"""Tests for the reordering algorithms (paper Section IV-C)."""

import numpy as np
import pytest

from repro.formats import CSRMatrix
from repro.matrices import band_matrix, hidden_cluster_matrix
from repro.reorder import (
    GrayCodeReorderer,
    HypergraphReorderer,
    IdentityReorderer,
    JaccardReorderer,
    RCMReorderer,
    SaadReorderer,
    available_reorderers,
    get_reorderer,
    jaccard_distance,
)
from repro.reorder.graycode import row_bucket_masks
from repro.reorder.rcm import rcm_permutation
from repro.reorder.saad import cosine_similarity

ALL_REORDERERS = [
    IdentityReorderer,
    JaccardReorderer,
    RCMReorderer,
    SaadReorderer,
    GrayCodeReorderer,
    HypergraphReorderer,
]


@pytest.fixture
def clustered(rng):
    """A matrix with hidden row clusters, shuffled (reordering should help)."""
    return hidden_cluster_matrix(
        320, 320, cluster_size=16, segments_per_cluster=5, segment_width=8,
        row_fill=0.9, noise_nnz_per_row=0.2, shuffle=True, rng=rng,
    )


class TestCommonContract:
    @pytest.mark.parametrize("cls", ALL_REORDERERS)
    def test_row_perm_is_valid_permutation(self, cls, clustered):
        result = cls(block_shape=(16, 8)).reorder(clustered)
        perm = result.row_perm
        assert perm.shape == (clustered.nrows,)
        np.testing.assert_array_equal(np.sort(perm), np.arange(clustered.nrows))

    @pytest.mark.parametrize("cls", ALL_REORDERERS)
    def test_permutation_preserves_matrix_content(self, cls, clustered):
        result = cls(block_shape=(16, 8)).reorder(clustered)
        permuted = result.apply(clustered)
        assert permuted.nnz == clustered.nnz
        np.testing.assert_array_equal(
            np.sort(permuted.row_nnz()), np.sort(clustered.row_nnz())
        )

    @pytest.mark.parametrize("cls", ALL_REORDERERS)
    def test_column_variant_produces_valid_permutation(self, cls, clustered):
        result = cls(block_shape=(16, 8), permute_columns=True).reorder(clustered)
        assert result.col_perm is not None
        np.testing.assert_array_equal(
            np.sort(result.col_perm), np.arange(clustered.ncols)
        )

    @pytest.mark.parametrize("cls", ALL_REORDERERS)
    def test_stats_are_populated(self, cls, clustered):
        result = cls(block_shape=(16, 8)).reorder(clustered)
        assert result.stats_before is not None
        assert result.stats_after is not None
        assert result.stats_before.n_blocks > 0
        assert result.stats_after.n_blocks > 0

    @pytest.mark.parametrize("cls", ALL_REORDERERS)
    def test_handles_empty_rows(self, cls):
        dense = np.zeros((48, 48), dtype=np.float32)
        dense[0, :10] = 1.0
        dense[17, 20:30] = 1.0
        result = cls(block_shape=(16, 8)).reorder(CSRMatrix.from_dense(dense))
        np.testing.assert_array_equal(np.sort(result.row_perm), np.arange(48))

    @pytest.mark.parametrize("cls", ALL_REORDERERS)
    def test_handles_empty_matrix(self, cls):
        result = cls(block_shape=(16, 8)).reorder(CSRMatrix.empty((32, 32)))
        assert result.row_perm.shape == (32,)


class TestRegistry:
    def test_all_algorithms_registered(self):
        names = available_reorderers()
        for expected in ("identity", "jaccard", "rcm", "saad", "graycode", "hypergraph"):
            assert expected in names

    def test_get_reorderer_passes_kwargs(self):
        r = get_reorderer("jaccard", block_shape=(8, 4), threshold=0.3)
        assert r.block_shape == (8, 4)
        assert r.threshold == 0.3

    def test_unknown_name_raises(self):
        with pytest.raises(ValueError, match="unknown reorderer"):
            get_reorderer("bogus")


class TestIdentity:
    def test_identity_permutation(self, small_csr):
        result = IdentityReorderer().reorder(small_csr)
        np.testing.assert_array_equal(result.row_perm, np.arange(small_csr.nrows))
        assert result.block_reduction == pytest.approx(1.0)


class TestJaccard:
    def test_recovers_hidden_clusters(self, clustered):
        result = JaccardReorderer(block_shape=(16, 8), threshold=0.6).reorder(clustered)
        assert result.block_reduction > 1.3

    def test_identical_rows_grouped(self):
        # 4 distinct row patterns, each repeated 8 times, interleaved
        dense = np.zeros((32, 64), dtype=np.float32)
        patterns = [range(0, 8), range(16, 24), range(32, 40), range(48, 56)]
        for i in range(32):
            dense[i, list(patterns[i % 4])] = 1.0
        csr = CSRMatrix.from_dense(dense)
        result = JaccardReorderer(block_shape=(8, 8), threshold=0.1).reorder(csr)
        # perfect clustering: each 8-row group shares one block column, so the
        # 16 blocks of the interleaved ordering collapse to 4
        assert result.stats_after.n_blocks == 4
        assert result.block_reduction == pytest.approx(4.0)

    def test_threshold_zero_merges_only_identical(self, clustered):
        strict = JaccardReorderer(block_shape=(16, 8), threshold=0.0).reorder(clustered)
        loose = JaccardReorderer(block_shape=(16, 8), threshold=0.9).reorder(clustered)
        assert strict.stats_after.n_blocks >= loose.stats_after.n_blocks * 0.5

    def test_invalid_threshold(self):
        with pytest.raises(ValueError):
            JaccardReorderer(threshold=1.5)

    def test_max_cluster_size_respected(self, clustered):
        result = JaccardReorderer(
            block_shape=(16, 8), threshold=0.9, max_cluster_size=4
        ).reorder(clustered)
        np.testing.assert_array_equal(np.sort(result.row_perm), np.arange(clustered.nrows))

    def test_jaccard_distance_utility(self):
        a = np.array([1, 2, 3])
        b = np.array([2, 3, 4])
        assert jaccard_distance(a, b) == pytest.approx(1 - 2 / 4)
        assert jaccard_distance(a, a) == 0.0
        assert jaccard_distance(np.array([1]), np.array([2])) == 1.0
        assert jaccard_distance(np.array([], dtype=int), np.array([], dtype=int)) == 0.0


class TestRCM:
    def test_reduces_bandwidth_of_shuffled_band(self):
        band = band_matrix(256, 4, rng=np.random.default_rng(0))
        # symmetric shuffle: apply same permutation to rows and columns so the
        # matrix stays symmetric (RCM operates on the adjacency graph)
        perm = np.random.default_rng(2).permutation(256)
        sym_shuffled = band.permute_rows(perm).permute_cols(perm)
        rcm_perm = rcm_permutation(sym_shuffled)
        reordered = sym_shuffled.permute_rows(rcm_perm).permute_cols(rcm_perm)
        assert reordered.bandwidth() < sym_shuffled.bandwidth()

    def test_band_matrix_bandwidth_not_much_worse(self):
        band = band_matrix(128, 3, rng=np.random.default_rng(0))
        perm = rcm_permutation(band)
        reordered = band.permute_rows(perm).permute_cols(perm)
        assert reordered.bandwidth() <= 2 * band.bandwidth() + 2

    def test_requires_square_matrix(self):
        rect = CSRMatrix.from_dense(np.ones((4, 6), dtype=np.float32))
        with pytest.raises(ValueError):
            rcm_permutation(rect)
        # but the Reorderer interface falls back gracefully
        result = RCMReorderer(block_shape=(2, 2)).reorder(rect)
        np.testing.assert_array_equal(np.sort(result.row_perm), np.arange(4))

    def test_disconnected_components_all_visited(self):
        dense = np.zeros((8, 8), dtype=np.float32)
        dense[0, 1] = dense[1, 0] = 1.0
        dense[5, 6] = dense[6, 5] = 1.0
        perm = rcm_permutation(CSRMatrix.from_dense(dense))
        np.testing.assert_array_equal(np.sort(perm), np.arange(8))


class TestSaad:
    def test_cosine_similarity_utility(self):
        a = np.array([1, 2, 3, 4])
        b = np.array([3, 4, 5, 6])
        assert cosine_similarity(a, b) == pytest.approx(2 / 4)
        assert cosine_similarity(a, a) == pytest.approx(1.0)
        assert cosine_similarity(a, np.array([], dtype=int)) == 0.0

    def test_reduces_blocks_on_clustered_matrix(self, clustered):
        result = SaadReorderer(block_shape=(16, 8), tau=0.6).reorder(clustered)
        assert result.block_reduction > 1.2

    def test_invalid_tau(self):
        with pytest.raises(ValueError):
            SaadReorderer(tau=-0.1)


class TestGrayCode:
    def test_bucket_masks(self):
        dense = np.zeros((2, 64), dtype=np.float32)
        dense[0, 0] = 1.0   # first bucket -> most significant bit
        dense[1, 63] = 1.0  # last bucket -> least significant bit
        masks = row_bucket_masks(CSRMatrix.from_dense(dense), 8)
        assert masks[0] == np.uint64(1 << 7)
        assert masks[1] == np.uint64(1)

    def test_groups_rows_with_same_column_region(self, clustered):
        result = GrayCodeReorderer(block_shape=(16, 8)).reorder(clustered)
        assert result.block_reduction > 1.0

    def test_invalid_bits(self):
        csr = CSRMatrix.from_dense(np.eye(4, dtype=np.float32))
        with pytest.raises(ValueError):
            row_bucket_masks(csr, 0)


class TestHypergraph:
    def test_reduces_blocks_on_clustered_matrix(self, clustered):
        result = HypergraphReorderer(block_shape=(16, 8), leaf_size=16).reorder(clustered)
        assert result.block_reduction > 1.1

    def test_leaf_size_validation(self):
        with pytest.raises(ValueError):
            HypergraphReorderer(leaf_size=0)


class TestPaperObservations:
    def test_band_matrix_needs_no_reordering(self):
        """Section IV-C: for band matrices the identity permutation is already
        optimal; Jaccard reordering must not find a meaningfully better one."""
        band = band_matrix(512, 32, rng=np.random.default_rng(0))
        result = JaccardReorderer(block_shape=(16, 8)).reorder(band)
        assert result.stats_after.n_blocks >= result.stats_before.n_blocks * 0.95

    def test_column_permutation_gains_little_over_row_only(self, clustered):
        """Section VI-F: column permutation does not significantly reduce the
        number of blocks beyond row-only permutation."""
        row_only = JaccardReorderer(block_shape=(16, 8)).reorder(clustered)
        row_col = JaccardReorderer(block_shape=(16, 8), permute_columns=True).reorder(clustered)
        assert row_col.stats_after.n_blocks >= 0.5 * row_only.stats_after.n_blocks

    def test_jaccard_beats_random_on_clustered(self, clustered, rng):
        jaccard = JaccardReorderer(block_shape=(16, 8)).reorder(clustered)
        random_perm = rng.permutation(clustered.nrows)
        from repro.reorder import count_blocks

        random_blocks = count_blocks(clustered, (16, 8), row_perm=random_perm)
        assert jaccard.stats_after.n_blocks < random_blocks
