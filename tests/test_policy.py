"""ExecutionPolicy: validation, env resolution, and the deprecation shim."""

import pickle
import warnings

import numpy as np
import pytest

from repro import SMaTConfig
from repro.core.plan import PlanSpec
from repro.core.policy import (
    EXECUTOR_ENV,
    ExecutionPolicy,
    OnlineTuningConfig,
    default_executor,
    policy_from_legacy,
)
from repro.engine import SpMMEngine
from repro.serve import SpMMServer
from repro.shard import ShardedSpMM
from repro.workloads import SpMMOperator


def _operand(A, n=8, seed=0):
    rng = np.random.default_rng(seed)
    return rng.normal(size=(A.ncols, n)).astype(np.float32)


class TestPolicyValue:
    def test_defaults(self):
        policy = ExecutionPolicy()
        assert policy.executor is None
        assert policy.max_workers == 4
        assert not policy.tune
        assert not policy.sharded
        assert policy.grid == 4
        assert policy.shard_mode == "nnz"
        assert policy.latency_window == 1024
        assert policy.online_tune is None

    def test_frozen(self):
        with pytest.raises(AttributeError):
            ExecutionPolicy().max_workers = 8

    def test_replace_returns_new_value(self):
        base = ExecutionPolicy()
        tuned = base.replace(tune=True, executor="process")
        assert tuned.tune and tuned.executor == "process"
        assert not base.tune and base.executor is None

    @pytest.mark.parametrize(
        "kwargs",
        [
            {"executor": "banana"},
            {"max_workers": 0},
            {"shard_mode": "banana"},
            {"latency_window": 0},
        ],
    )
    def test_rejects_invalid_fields(self, kwargs):
        with pytest.raises(ValueError):
            ExecutionPolicy(**kwargs)

    def test_picklable(self):
        policy = ExecutionPolicy(executor="process", grid="2x2", tune=True)
        assert pickle.loads(pickle.dumps(policy)) == policy

    def test_online_tune_rides_along(self):
        cfg = OnlineTuningConfig(explore=0.25)
        policy = ExecutionPolicy(online_tune=cfg)
        assert policy.online_tune == cfg
        assert pickle.loads(pickle.dumps(policy)) == policy
        hash(policy)  # still hashable with the nested frozen config

    def test_online_tune_replace(self):
        base = ExecutionPolicy()
        enabled = base.replace(online_tune=OnlineTuningConfig())
        assert base.online_tune is None
        assert enabled.online_tune == OnlineTuningConfig()


class TestEnvResolution:
    def test_default_is_thread(self, monkeypatch):
        monkeypatch.delenv(EXECUTOR_ENV, raising=False)
        assert default_executor() == "thread"
        assert ExecutionPolicy().resolved_executor() == "thread"

    def test_env_picks_process(self, monkeypatch):
        monkeypatch.setenv(EXECUTOR_ENV, "process")
        assert ExecutionPolicy().resolved_executor() == "process"

    def test_explicit_field_beats_env(self, monkeypatch):
        monkeypatch.setenv(EXECUTOR_ENV, "process")
        assert ExecutionPolicy(executor="thread").resolved_executor() == "thread"

    def test_invalid_env_raises(self, monkeypatch):
        monkeypatch.setenv(EXECUTOR_ENV, "banana")
        with pytest.raises(ValueError, match="REPRO_EXECUTOR"):
            default_executor()

    def test_resolution_happens_at_use_time(self, monkeypatch):
        monkeypatch.delenv(EXECUTOR_ENV, raising=False)
        policy = ExecutionPolicy()
        assert policy.resolved_executor() == "thread"
        monkeypatch.setenv(EXECUTOR_ENV, "process")
        assert policy.resolved_executor() == "process"


class TestLegacyShim:
    def test_nothing_legacy_returns_policy_or_default(self):
        policy = ExecutionPolicy(max_workers=2)
        assert policy_from_legacy(policy, where="X") is policy
        assert policy_from_legacy(None, where="X") == ExecutionPolicy()
        base = ExecutionPolicy(tune=True)
        assert policy_from_legacy(None, where="X", base=base) is base

    def test_legacy_kwargs_build_policy_with_one_warning(self):
        with pytest.warns(DeprecationWarning, match="policy=ExecutionPolicy") as rec:
            policy = policy_from_legacy(
                None, where="X", max_workers=2, tune=True, mode="cost"
            )
        assert len(rec) == 1
        assert policy == ExecutionPolicy(max_workers=2, tune=True, shard_mode="cost")

    def test_both_policy_and_legacy_raises(self):
        with pytest.raises(TypeError, match="not both"):
            policy_from_legacy(ExecutionPolicy(), where="X", tune=True)

    def test_none_sentinels_are_not_legacy(self):
        with warnings.catch_warnings():
            warnings.simplefilter("error")
            policy_from_legacy(None, where="X", tune=None, max_workers=None)


class TestSurfaceShims:
    """Every surface accepts policy= and keeps legacy kwargs via the shim."""

    def test_engine_legacy_kwargs_warn_and_match_policy(self, medium_random):
        B = _operand(medium_random)
        with pytest.warns(DeprecationWarning, match="SpMMEngine"):
            legacy = SpMMEngine(max_workers=2, latency_window=64)
        new = SpMMEngine(policy=ExecutionPolicy(max_workers=2, latency_window=64))
        try:
            assert legacy.max_workers == new.max_workers == 2
            assert legacy.policy == new.policy
            C1 = legacy.execute_one(medium_random, B).C
            C2 = new.execute_one(medium_random, B).C
            np.testing.assert_array_equal(C1, C2)
            # identical telemetry shape/counters after identical work
            t1, t2 = legacy.telemetry(), new.telemetry()
            assert t1.completed == t2.completed == 1
            assert t1.executor.kind == t2.executor.kind
            assert t1.executor.workers == t2.executor.workers == 2
        finally:
            legacy.close()
            new.close()

    def test_engine_rejects_policy_plus_legacy(self):
        with pytest.raises(TypeError, match="not both"):
            SpMMEngine(policy=ExecutionPolicy(), max_workers=2)

    def test_engine_policy_sharded_routes_multiply(self, medium_random):
        B = _operand(medium_random)
        with SpMMEngine(
            policy=ExecutionPolicy(sharded=True, grid="2x2"), cache_size=32
        ) as engine:
            C = engine.multiply(medium_random, B)
        np.testing.assert_allclose(C, medium_random.spmm(B), rtol=1e-3, atol=1e-3)

    def test_sharded_facade_old_vs_new_identical_plans(self, medium_random):
        B = _operand(medium_random)
        with pytest.warns(DeprecationWarning, match="ShardedSpMM"):
            with ShardedSpMM(medium_random, 2, max_workers=2) as legacy:
                C1, report1 = legacy.multiply(B, return_report=True)
        with ShardedSpMM(
            medium_random, 2, policy=ExecutionPolicy(max_workers=2)
        ) as new:
            C2, report2 = new.multiply(B, return_report=True)
        np.testing.assert_array_equal(C1, C2)
        assert [s.config for s in report1.shards] == [s.config for s in report2.shards]
        assert report1.grid == report2.grid

    def test_sharded_facade_grid_from_policy(self, medium_random):
        with ShardedSpMM(
            medium_random, policy=ExecutionPolicy(grid="2x2")
        ) as sharded:
            assert sharded.grid == (2, 2)

    def test_sharded_facade_rejects_policy_with_shared_engine(self, medium_random):
        with SpMMEngine() as engine:
            with pytest.raises(ValueError, match="engine"):
                ShardedSpMM(
                    medium_random, 2, engine=engine, policy=ExecutionPolicy()
                )

    def test_operator_legacy_warns_and_matches_policy(self, medium_random):
        B = _operand(medium_random)
        with pytest.warns(DeprecationWarning, match="SpMMOperator"):
            with SpMMOperator(medium_random, sharded=True, grid="2x2") as legacy:
                C1 = legacy.matmul(B)
        with SpMMOperator(
            medium_random, policy=ExecutionPolicy(sharded=True, grid="2x2")
        ) as new:
            assert new.sharded and new.grid == "2x2"
            C2 = new.matmul(B)
        np.testing.assert_array_equal(C1, C2)

    def test_operator_rejects_policy_with_shared_engine(self, medium_random):
        with SpMMEngine() as engine:
            with pytest.raises(ValueError, match="engine"):
                SpMMOperator(medium_random, engine=engine, policy=ExecutionPolicy())

    def test_server_legacy_warns_and_matches_policy(self):
        with pytest.warns(DeprecationWarning, match="SpMMServer"):
            with SpMMServer(max_workers=2) as legacy:
                legacy_workers = legacy.engine.max_workers
                legacy_admission = legacy.admission.max_inflight
        with SpMMServer(policy=ExecutionPolicy(max_workers=2)) as new:
            assert new.engine.max_workers == legacy_workers == 2
            assert new.admission.max_inflight == legacy_admission == 2

    def test_server_rejects_policy_with_shared_engine(self):
        with SpMMEngine() as engine:
            with pytest.raises(ValueError, match="engine"):
                SpMMServer(engine=engine, policy=ExecutionPolicy())


class TestPlanSpecPicklable:
    def test_config_and_spec_roundtrip(self):
        spec = PlanSpec(SMaTConfig(reorder_columns=True), tuned=True)
        clone = pickle.loads(pickle.dumps(spec))
        assert clone.signature() == spec.signature()
        assert clone.tuned

    def test_spec_builds_equivalent_plan(self, medium_random):
        spec = PlanSpec(SMaTConfig())
        clone = pickle.loads(pickle.dumps(spec))
        B = _operand(medium_random)
        C1, _ = spec.build(medium_random).execute(B)
        C2, _ = clone.build(medium_random).execute(B)
        np.testing.assert_array_equal(C1, C2)
