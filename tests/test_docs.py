"""The documentation suite and its executable-code-block checker.

``repro.analysis.doccheck`` is the machinery behind the CI docs job:
it extracts every fenced ```python block from README.md / docs/ and
executes it.  These tests cover the extraction and rescaling logic on
synthetic markdown, then keep the real documentation honest: every
block must at least compile here (full execution runs in the CI docs
job at ``--scale 0.05``), and the architecture guide -- whose blocks are
small -- is executed outright.
"""

from pathlib import Path

import pytest

from repro.analysis.doccheck import (
    check_file,
    extract_code_blocks,
    main,
    rescale_source,
)

REPO_ROOT = Path(__file__).resolve().parent.parent
DOC_FILES = [
    REPO_ROOT / "README.md",
    REPO_ROOT / "docs" / "architecture.md",
    REPO_ROOT / "docs" / "serving.md",
    REPO_ROOT / "docs" / "observability.md",
    REPO_ROOT / "docs" / "tuning.md",
]


class TestExtraction:
    def test_extracts_python_blocks_with_line_numbers(self, tmp_path):
        md = tmp_path / "doc.md"
        md.write_text(
            "# title\n\n```python\nx = 1\n```\n\nprose\n\n```bash\nls\n```\n\n"
            "```python\ny = x + 1\n```\n"
        )
        blocks = extract_code_blocks(md)
        assert len(blocks) == 2  # the bash block is ignored
        assert blocks[0].source == "x = 1\n"
        assert blocks[0].lineno == 4
        assert blocks[1].source == "y = x + 1\n"

    def test_unterminated_fence_raises(self, tmp_path):
        md = tmp_path / "bad.md"
        md.write_text("```python\nx = 1\n")
        with pytest.raises(ValueError, match="unterminated"):
            extract_code_blocks(md)

    def test_skip_marker(self, tmp_path):
        md = tmp_path / "doc.md"
        md.write_text("```python\n# doccheck: skip\nraise RuntimeError\n```\n")
        (block,) = extract_code_blocks(md)
        assert block.skipped
        assert check_file(md, verbose=False) == 0  # skipped, so no failure

    def test_rescale_rewrites_loader_scale_kwargs_only(self):
        src = (
            'suitesparse.load("cant", scale=0.1)\n'
            "load(name, scale = 0.25)\n"
            "rng.normal(scale=0.3, size=(4, 4))\n"
            "upscale=3\n"
        )
        out = rescale_source(src, 0.05)
        assert 'suitesparse.load("cant", scale=0.05)' in out
        assert "load(name, scale = 0.05)" in out
        # non-loader scale kwargs stay exactly as the docs show them
        assert "rng.normal(scale=0.3, size=(4, 4))" in out
        assert "upscale=3" in out
        assert rescale_source(src, None) == src


class TestExecution:
    def test_blocks_share_a_namespace(self, tmp_path):
        md = tmp_path / "doc.md"
        md.write_text("```python\nx = 2\n```\n\n```python\nassert x == 2\n```\n")
        assert check_file(md, verbose=False) == 0

    def test_failures_are_counted_and_reported(self, tmp_path, capsys):
        md = tmp_path / "doc.md"
        md.write_text("```python\nraise ValueError('boom')\n```\n\n```python\nok = 1\n```\n")
        assert check_file(md, verbose=False) == 1
        assert "FAIL" in capsys.readouterr().out

    def test_main_exit_codes(self, tmp_path):
        good = tmp_path / "good.md"
        good.write_text("```python\npass\n```\n")
        bad = tmp_path / "bad.md"
        bad.write_text("```python\n1 / 0\n```\n")
        assert main([str(good), "-q"]) == 0
        assert main([str(bad), "-q"]) == 1
        assert main([str(tmp_path / "missing.md")]) == 1

    def test_main_applies_scale_override(self, tmp_path):
        md = tmp_path / "doc.md"
        md.write_text(
            "```python\n"
            "def load(name, scale):\n"
            "    return scale\n"
            "assert load('cant', scale=0.9) == 0.05\n"
            "```\n"
        )
        assert main([str(md), "--scale", "0.05", "-q"]) == 0


class TestRealDocumentation:
    """README.md and the docs/ guides exist and cannot rot silently."""

    def test_doc_files_exist_with_python_blocks(self):
        for path in DOC_FILES:
            assert path.exists(), f"{path} is part of the documentation suite"
            assert len(extract_code_blocks(path)) >= 3

    @pytest.mark.parametrize("path", DOC_FILES, ids=lambda p: p.name)
    def test_all_blocks_compile(self, path):
        for block in extract_code_blocks(path):
            compile(rescale_source(block.source, 0.05), f"{path}:{block.lineno}", "exec")

    def test_architecture_guide_executes(self):
        # small blocks (cant at scale 0.05); the full README runs in CI
        assert check_file(DOC_FILES[1], scale=0.05, verbose=False) == 0

    def test_readme_covers_every_subsystem(self):
        text = DOC_FILES[0].read_text()
        for needle in (
            "pip install -e",
            "SpMMEngine",
            "ShardedSpMM",
            "repro.workloads",
            "repro workload",
            "SpMMServer",
            "repro serve",
            "BENCH_baseline.json",
            "docs/architecture.md",
            "docs/serving.md",
        ):
            assert needle in text, f"README lost its {needle!r} section"

    def test_serving_manual_covers_operations(self):
        text = DOC_FILES[2].read_text()
        for needle in (
            "POST /matrices",
            "POST /multiply",
            "GET /jobs/{id}",
            "POST /stream",
            "GET /metrics",
            "Retry-After",
            "max_body_bytes",
            "repro serve",
        ):
            assert needle in text, f"serving manual lost its {needle!r} coverage"
