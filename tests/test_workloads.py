"""Workload layer: iterative SpMM applications on the engine.

Every workload is verified against a dense numpy mirror of the same
algorithm (same arithmetic, dense float64 operator), across the three
matrix families the workloads target: graphs (PageRank / GCN), band
matrices (smoothers) and clustered matrices (power iteration).  The
telemetry contract -- plan reuse (one cache miss per run), early exit on
the convergence tolerance, and the sharded / tuned pass-through -- is
covered alongside.
"""

import numpy as np
import pytest

from repro.core import SMaTConfig
from repro.engine import SpMMEngine
from repro.formats import CSRMatrix, gcn_normalize, transition_matrix
from repro.matrices import band_matrix, hidden_cluster_matrix, scale_free_graph
from repro.workloads import (
    SpMMOperator,
    WorkloadReport,
    chebyshev_smoother,
    dense_pagerank_reference,
    estimate_spectral_bounds,
    gcn_forward,
    jacobi_smoother,
    pagerank,
    power_iteration,
)


# ---------------------------------------------------------------------------
# dense numpy references (same algorithm, dense float64 operator);
# PageRank's lives in the library (dense_pagerank_reference) because the
# benchmark gate validates against it too
# ---------------------------------------------------------------------------


def dense_gcn(A, H, weights):
    a_hat = gcn_normalize(A).to_dense().astype(np.float64)
    H = H.astype(np.float64)
    for layer, W in enumerate(weights):
        H = a_hat @ (H @ W.astype(np.float64))
        if layer < len(weights) - 1:
            H = np.maximum(H, 0.0)
    return H


def dense_jacobi(A, b, omega, tol, max_iter):
    Ad = A.to_dense().astype(np.float64)
    diag = np.diag(Ad).copy()
    x = np.zeros_like(b, dtype=np.float64)
    b_norm = max(float(np.linalg.norm(b)), 1e-300)
    for _ in range(max_iter):
        r = b - Ad @ x
        if float(np.linalg.norm(r)) / b_norm < tol:
            break
        x = x + omega * (r / diag)
    return x


def _spd_band(n: int = 192, width: int = 6, dominance: float = 1.2) -> CSRMatrix:
    """A symmetric diagonally dominant band matrix (smoother territory).

    ``dominance`` scales the diagonal boost: large values make Jacobi
    converge almost instantly, values near 1 leave a slower, more
    realistic smoothing problem.
    """
    base = band_matrix(n, width, rng=np.random.default_rng(3))
    dense = base.to_dense().astype(np.float64)
    dense = np.abs(dense) + np.abs(dense).T
    np.fill_diagonal(dense, 0.0)
    dense += np.eye(n) * (dominance * np.abs(dense).sum(axis=1).max())
    return CSRMatrix.from_dense(dense.astype(np.float32))


@pytest.fixture
def spd_band() -> CSRMatrix:
    return _spd_band()


# ---------------------------------------------------------------------------
# correctness vs dense references, across matrix families
# ---------------------------------------------------------------------------

class TestPageRankCorrectness:
    def test_matches_dense_reference_on_graph(self, rng):
        A = scale_free_graph(384, avg_degree=8.0, rng=rng)
        result = pagerank(A, tol=1e-10, max_iter=150)
        reference = dense_pagerank_reference(A, damping=0.85, tol=1e-12, max_iter=300)
        np.testing.assert_allclose(result.scores, reference, rtol=1e-4, atol=1e-7)
        np.testing.assert_allclose(result.scores.sum(), 1.0, rtol=1e-10)
        assert np.all(result.scores > 0)

    def test_matches_dense_reference_on_clustered(self, rng):
        A = hidden_cluster_matrix(256, 256, cluster_size=16, rng=rng)
        result = pagerank(A, tol=1e-10, max_iter=150)
        reference = dense_pagerank_reference(A, damping=0.85, tol=1e-12, max_iter=300)
        np.testing.assert_allclose(result.scores, reference, rtol=1e-4, atol=1e-7)

    def test_personalization_matrix_runs_chains_together(self, rng):
        A = scale_free_graph(200, avg_degree=6.0, rng=rng)
        P = np.zeros((200, 2))
        P[:100, 0] = 1.0
        P[100:, 1] = 1.0
        result = pagerank(A, personalization=P, tol=1e-9, max_iter=100)
        assert result.scores.shape == (200, 2)
        np.testing.assert_allclose(result.scores.sum(axis=0), [1.0, 1.0], rtol=1e-9)
        # the two chains teleport to disjoint halves, so they must differ
        assert np.abs(result.scores[:, 0] - result.scores[:, 1]).max() > 1e-4

    def test_input_validation(self, rng):
        A = scale_free_graph(64, avg_degree=4.0, rng=rng)
        with pytest.raises(ValueError, match="damping"):
            pagerank(A, damping=1.5)
        with pytest.raises(ValueError, match="rows"):
            pagerank(A, personalization=np.ones(32))
        with pytest.raises(ValueError, match="non-negative"):
            pagerank(A, personalization=-np.ones(64))


class TestPowerIterationCorrectness:
    def test_finds_dominant_eigenvalue_on_clustered(self, rng):
        A = hidden_cluster_matrix(192, 192, cluster_size=16, rng=rng)
        result = power_iteration(A, tol=1e-7, max_iter=400)
        true_max = np.abs(np.linalg.eigvals(A.to_dense().astype(np.float64))).max()
        np.testing.assert_allclose(abs(result.eigenvalue), true_max, rtol=1e-2)
        assert np.isclose(np.linalg.norm(result.vector), 1.0, rtol=1e-6)

    def test_rejects_non_square(self, rng):
        from repro.matrices import uniform_random

        A = uniform_random(64, 32, density=0.1, rng=rng)
        with pytest.raises(ValueError, match="square"):
            power_iteration(A)


class TestGCNCorrectness:
    def test_matches_dense_reference_on_graph(self, rng):
        A = scale_free_graph(256, avg_degree=6.0, rng=rng)
        H = rng.normal(size=(256, 16)).astype(np.float32)
        weights = [rng.normal(scale=0.3, size=(16, 16)).astype(np.float32) for _ in range(3)]
        result = gcn_forward(A, H, weights)
        reference = dense_gcn(A, H, weights)
        np.testing.assert_allclose(result.H, reference, rtol=1e-3, atol=1e-4)
        assert result.report.iterations == 3
        assert result.report.converged

    def test_activation_variants_and_validation(self, rng):
        A = scale_free_graph(96, avg_degree=4.0, rng=rng)
        H = rng.normal(size=(96, 8)).astype(np.float32)
        W = [rng.normal(size=(8, 8)).astype(np.float32)]
        out_tanh = gcn_forward(A, H, W, activation="tanh", final_activation=True)
        assert float(np.abs(out_tanh.H).max()) <= 1.0
        with pytest.raises(ValueError, match="activation"):
            gcn_forward(A, H, W, activation="sigmoid")
        with pytest.raises(ValueError, match="weight"):
            gcn_forward(A, H, [rng.normal(size=(5, 8)).astype(np.float32)])
        with pytest.raises(ValueError, match="at least one"):
            gcn_forward(A, H, [])


class TestSmootherCorrectness:
    def test_jacobi_matches_dense_reference_on_band(self, rng, spd_band):
        b = rng.normal(size=192)
        result = jacobi_smoother(spd_band, b, tol=1e-9, max_iter=30)
        reference = dense_jacobi(spd_band, b, 2.0 / 3.0, 1e-9, 30)
        np.testing.assert_allclose(result.x, reference, rtol=1e-4, atol=1e-6)
        # residuals decrease monotonically until the float32 noise floor
        residuals = [r for r in result.report.residuals if r > 1e-6]
        assert all(b <= a * 1.05 for a, b in zip(residuals, residuals[1:]))

    def test_chebyshev_beats_jacobi_at_fixed_sweeps(self, rng):
        # a barely-dominant system where Jacobi grinds; exact eigenvalue
        # bounds make the Chebyshev polynomial optimal over the spectrum
        A = _spd_band(dominance=1.05)
        eigs = np.linalg.eigvalsh(A.to_dense().astype(np.float64))
        b = rng.normal(size=192)
        sweeps = 25
        jac = jacobi_smoother(A, b, tol=0.0, max_iter=sweeps)
        cheb = chebyshev_smoother(
            A, b, tol=0.0, max_iter=sweeps, eig_bounds=(eigs[0], eigs[-1])
        )
        assert cheb.report.final_residual < jac.report.final_residual
        # the smoothed iterate approximately solves the system
        residual = np.linalg.norm(b - A.to_dense().astype(np.float64) @ cheb.x)
        assert residual / np.linalg.norm(b) < 1e-4

    def test_block_rhs_advances_all_systems(self, rng, spd_band):
        b = rng.normal(size=(192, 4))
        result = chebyshev_smoother(spd_band, b, tol=1e-6, max_iter=50)
        assert result.x.shape == (192, 4)
        dense = spd_band.to_dense().astype(np.float64)
        res = np.linalg.norm(b - dense @ result.x, axis=0) / np.linalg.norm(b, axis=0)
        assert res.max() < 1e-3

    def test_validation(self, rng, spd_band):
        hollow = np.ones((8, 8), dtype=np.float32) - np.eye(8, dtype=np.float32)
        with pytest.raises(ValueError, match="diagonal"):
            jacobi_smoother(CSRMatrix.from_dense(hollow), np.ones(8))
        with pytest.raises(ValueError, match="omega"):
            jacobi_smoother(spd_band, np.ones(192), omega=2.0)
        with pytest.raises(ValueError, match="lambda"):
            chebyshev_smoother(spd_band, np.ones(192), eig_bounds=(2.0, 1.0))
        with pytest.raises(ValueError, match="x0"):
            jacobi_smoother(spd_band, np.ones(192), x0=np.ones(10))

    def test_spectral_bounds_bound_the_spectrum(self, spd_band):
        lmin, lmax = estimate_spectral_bounds(spd_band)
        eigs = np.linalg.eigvalsh(spd_band.to_dense().astype(np.float64))
        assert lmax >= eigs.max()
        assert 0.0 < lmin < lmax


# ---------------------------------------------------------------------------
# telemetry: plan reuse, early exit, amortisation
# ---------------------------------------------------------------------------

class TestWorkloadTelemetry:
    def test_single_plan_reused_across_iterations(self, rng):
        A = scale_free_graph(256, avg_degree=6.0, rng=rng)
        result = pagerank(A, tol=1e-12, max_iter=25)
        report = result.report
        assert report.iterations == 25
        assert report.cache_misses == 1, "exactly one plan build per run"
        assert report.cache_hits == 24
        assert report.cold_ms > 0 and report.warm_ms > 0
        assert report.amortization_ratio > 1.0

    def test_tolerance_early_exit(self, rng):
        A = scale_free_graph(256, avg_degree=6.0, rng=rng)
        loose = pagerank(A, tol=1e-3, max_iter=100)
        assert loose.report.converged
        assert loose.report.iterations < 100
        assert loose.report.final_residual < 1e-3
        # a tolerance below float32 reach never triggers the early exit
        tight = pagerank(A, tol=0.0, max_iter=12)
        assert not tight.report.converged
        assert tight.report.iterations == 12

    def test_smoother_early_exit(self, rng, spd_band):
        b = rng.normal(size=192)
        result = chebyshev_smoother(spd_band, b, tol=1e-3, max_iter=100)
        assert result.report.converged
        assert result.report.iterations < 100

    def test_report_table_and_summary(self, rng):
        A = scale_free_graph(128, avg_degree=4.0, rng=rng)
        report = pagerank(A, tol=1e-6, max_iter=10).report
        rows = report.table()
        assert len(rows) == report.iterations
        assert rows[0]["cache_misses"] == 1 and rows[-1]["cache_hits"] == 1
        summary = report.summary()
        assert summary["workload"] == "pagerank"
        assert summary["amortization"] == report.amortization_ratio

    def test_empty_report_defaults(self):
        report = WorkloadReport(workload="x", matrix_shape=(4, 4), nnz=0)
        assert report.amortization_ratio == 1.0
        assert report.final_residual == float("inf")
        assert report.cold_ms == 0.0 and report.warm_ms == 0.0


# ---------------------------------------------------------------------------
# engine / sharded / tuned pass-through
# ---------------------------------------------------------------------------

class TestPassThrough:
    def test_shared_engine_reuses_plans_across_runs(self, rng):
        A = scale_free_graph(256, avg_degree=6.0, rng=rng)
        with SpMMEngine(cache_size=8, max_workers=2) as engine:
            first = pagerank(A, tol=1e-12, max_iter=5, engine=engine)
            second = pagerank(A, tol=1e-12, max_iter=5, engine=engine)
            assert first.report.cache_misses == 1
            # the transition matrix plan is already cached: no cold build
            assert second.report.cache_misses == 0
            np.testing.assert_array_equal(first.scores, second.scores)

    def test_sharded_and_tuned_smoke(self, rng, tmp_path):
        A = scale_free_graph(384, avg_degree=8.0, rng=rng)
        plain = pagerank(A, tol=1e-10, max_iter=40)
        with SpMMEngine(
            SMaTConfig(),
            cache_size=32,
            max_workers=2,
            tuning_cache=str(tmp_path / "tuning.json"),
        ) as engine:
            sharded = pagerank(
                A, tol=1e-10, max_iter=40, engine=engine, sharded=True, grid=2
            )
        assert sharded.report.sharded and sharded.report.tuned
        np.testing.assert_allclose(sharded.scores, plain.scores, rtol=1e-4, atol=1e-8)

    def test_sharded_gcn_matches_unsharded(self, rng):
        A = scale_free_graph(256, avg_degree=6.0, rng=rng)
        H = rng.normal(size=(256, 8)).astype(np.float32)
        weights = [rng.normal(scale=0.3, size=(8, 8)).astype(np.float32) for _ in range(2)]
        plain = gcn_forward(A, H, weights)
        sharded = gcn_forward(A, H, weights, sharded=True, grid=2)
        np.testing.assert_allclose(sharded.H, plain.H, rtol=1e-4, atol=1e-4)

    def test_operator_rejects_tune_with_borrowed_engine(self, rng):
        A = scale_free_graph(64, avg_degree=4.0, rng=rng)
        with SpMMEngine() as engine:
            with pytest.raises(ValueError, match="engine itself"):
                SpMMOperator(A, engine=engine, tune=True)

    def test_operator_owns_and_closes_private_engine(self, rng):
        A = scale_free_graph(64, avg_degree=4.0, rng=rng)
        with SpMMOperator(A) as op:
            op.matmul(np.ones((64, 4), dtype=np.float32))
            engine = op.engine
        with pytest.raises(RuntimeError, match="closed"):
            engine.multiply(A, np.ones((64, 4), dtype=np.float32))

    def test_operator_leaves_borrowed_engine_open(self, rng):
        A = scale_free_graph(64, avg_degree=4.0, rng=rng)
        with SpMMEngine() as engine:
            with SpMMOperator(A, engine=engine) as op:
                op.matmul(np.ones((64, 4), dtype=np.float32))
            # borrowed engine survives the operator
            engine.multiply(A, np.ones((64, 4), dtype=np.float32))
