"""Smoke tests for the example scripts.

The examples are documentation as much as code; these tests import them
(from the ``examples/`` directory, which is not a package) and verify the
non-trivial helper logic they contain, so that the examples cannot rot
silently as the library evolves.
"""

import importlib.util
from pathlib import Path

import numpy as np
import pytest

EXAMPLES_DIR = Path(__file__).resolve().parent.parent / "examples"


def _load_example(name: str):
    spec = importlib.util.spec_from_file_location(name, EXAMPLES_DIR / f"{name}.py")
    module = importlib.util.module_from_spec(spec)
    spec.loader.exec_module(module)
    return module


class TestExampleFiles:
    def test_all_examples_present(self):
        expected = {
            "quickstart.py",
            "gnn_spmm.py",
            "band_sweep.py",
            "reordering_study.py",
            "tuning_study.py",
            "sharded_spmm.py",
        }
        assert expected <= {p.name for p in EXAMPLES_DIR.glob("*.py")}

    @pytest.mark.parametrize(
        "name",
        [
            "quickstart",
            "gnn_spmm",
            "band_sweep",
            "reordering_study",
            "tuning_study",
            "sharded_spmm",
        ],
    )
    def test_examples_importable_and_have_main(self, name):
        module = _load_example(name)
        assert callable(getattr(module, "main"))


class TestShardedExampleHelpers:
    def test_best_of_returns_min_wall_ms(self):
        sharded = _load_example("sharded_spmm")
        calls = []

        def fn():
            calls.append(1)

        ms = sharded.best_of(fn, repeats=3)
        assert len(calls) == 3
        assert ms >= 0.0 and np.isfinite(ms)


class TestGNNHelpers:
    def test_gcn_normalise_rows_sum_behaviour(self, rng):
        gnn = _load_example("gnn_spmm")
        from repro.matrices import scale_free_graph

        adj = scale_free_graph(256, avg_degree=6.0, rng=rng)
        a_hat = gnn.gcn_normalise(adj)
        assert a_hat.shape == adj.shape
        # self-loops added: every diagonal entry is non-zero
        assert np.all(np.abs(np.diag(a_hat.to_dense())) > 0)
        # symmetric normalisation keeps values bounded by 1
        assert float(np.abs(a_hat.val).max()) <= 1.0 + 1e-6

    def test_propagate_matches_reference(self, rng):
        gnn = _load_example("gnn_spmm")
        from repro.matrices import uniform_random

        A = uniform_random(128, 128, density=0.05, rng=rng)
        H = rng.normal(size=(128, 16)).astype(np.float32)
        weights = [rng.normal(scale=0.2, size=(16, 16)).astype(np.float32) for _ in range(2)]
        out = gnn.propagate(lambda X: A.spmm(X), H, weights)
        ref = H
        for W in weights:
            ref = np.maximum(A.spmm(ref @ W), 0.0)
        np.testing.assert_allclose(out, ref, rtol=1e-5, atol=1e-5)
