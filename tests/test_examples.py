"""Smoke tests for the example scripts.

The examples are documentation as much as code; these tests import them
(from the ``examples/`` directory, which is not a package) and verify the
non-trivial helper logic they contain, so that the examples cannot rot
silently as the library evolves.
"""

import importlib.util
from pathlib import Path

import numpy as np
import pytest

EXAMPLES_DIR = Path(__file__).resolve().parent.parent / "examples"


def _load_example(name: str):
    spec = importlib.util.spec_from_file_location(name, EXAMPLES_DIR / f"{name}.py")
    module = importlib.util.module_from_spec(spec)
    spec.loader.exec_module(module)
    return module


class TestExampleFiles:
    def test_all_examples_present(self):
        expected = {
            "quickstart.py",
            "gnn_spmm.py",
            "pagerank.py",
            "band_sweep.py",
            "reordering_study.py",
            "tuning_study.py",
            "sharded_spmm.py",
        }
        assert expected <= {p.name for p in EXAMPLES_DIR.glob("*.py")}

    @pytest.mark.parametrize(
        "name",
        [
            "quickstart",
            "gnn_spmm",
            "pagerank",
            "band_sweep",
            "reordering_study",
            "tuning_study",
            "sharded_spmm",
        ],
    )
    def test_examples_importable_and_have_main(self, name):
        module = _load_example(name)
        assert callable(getattr(module, "main"))


class TestShardedExampleHelpers:
    def test_best_of_returns_min_wall_ms(self):
        sharded = _load_example("sharded_spmm")
        calls = []

        def fn():
            calls.append(1)

        ms = sharded.best_of(fn, repeats=3)
        assert len(calls) == 3
        assert ms >= 0.0 and np.isfinite(ms)


class TestGNNHelpers:
    def test_dense_reference_matches_workload(self, rng):
        gnn = _load_example("gnn_spmm")
        from repro.matrices import scale_free_graph
        from repro.workloads import gcn_forward

        adj = scale_free_graph(256, avg_degree=6.0, rng=rng)
        H = rng.normal(size=(256, 8)).astype(np.float32)
        weights = [rng.normal(scale=0.2, size=(8, 8)).astype(np.float32) for _ in range(2)]
        ref = gnn.dense_reference(adj, H, weights)
        out = gcn_forward(adj, H, weights)
        np.testing.assert_allclose(out.H, ref, rtol=1e-4, atol=1e-4)


class TestPageRankExampleHelpers:
    def test_dense_reference_is_a_distribution(self, rng):
        pr = _load_example("pagerank")
        from repro.matrices import scale_free_graph

        adj = scale_free_graph(128, avg_degree=6.0, rng=rng)
        scores = pr.dense_reference(adj, 0.85, 1e-10)
        assert scores.shape == (128,)
        assert np.all(scores > 0)
        np.testing.assert_allclose(scores.sum(), 1.0, rtol=1e-12)

    def test_dense_reference_matches_workload(self, rng):
        pr = _load_example("pagerank")
        from repro.matrices import scale_free_graph
        from repro.workloads import pagerank

        adj = scale_free_graph(128, avg_degree=6.0, rng=rng)
        ref = pr.dense_reference(adj, 0.85, 1e-10)
        out = pagerank(adj, damping=0.85, tol=1e-10, max_iter=200)
        np.testing.assert_allclose(out.scores, ref, rtol=1e-4, atol=1e-7)
