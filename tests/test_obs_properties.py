"""Property-based tests for the unified metrics registry (hypothesis).

Two invariants hold for *arbitrary* inputs, not just hand-picked cases:

* histogram percentiles over the retained window are numerically
  identical to ``numpy.percentile`` (linear interpolation), including
  after the bounded window truncates old samples, per labelled series;
* counter and gauge label aggregation is order-independent -- any
  permutation/interleaving of the same increments lands on the same
  totals, per-series values and ``sum_by`` aggregates.
"""

import math

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.obs import Histogram, MetricsRegistry
from repro.obs.metrics import parse_prometheus

finite_samples = st.lists(
    st.floats(
        min_value=-1e9, max_value=1e9, allow_nan=False, allow_infinity=False
    ),
    min_size=1,
    max_size=200,
)

quantiles = st.floats(min_value=0.0, max_value=100.0)


class TestHistogramPercentileProperties:
    @given(samples=finite_samples, q=quantiles)
    @settings(max_examples=200, deadline=None)
    def test_percentile_matches_numpy(self, samples, q):
        hist = Histogram("h_test", window=4096, buckets=(1.0,))
        for s in samples:
            hist.observe(s)
        expected = float(np.percentile(np.asarray(samples, dtype=float), q))
        got = hist.percentile(q)
        assert got == expected or math.isclose(got, expected, rel_tol=1e-12, abs_tol=1e-12)

    @given(samples=finite_samples, q=quantiles, window=st.integers(1, 64))
    @settings(max_examples=200, deadline=None)
    def test_percentile_matches_numpy_on_truncated_window(self, samples, q, window):
        """The bounded deque retains the *last* ``window`` samples; the
        percentile must agree with numpy over exactly that suffix."""
        hist = Histogram("h_test", window=window, buckets=(1.0,))
        for s in samples:
            hist.observe(s)
        retained = samples[-window:]
        assert hist.window_values() == retained
        expected = float(np.percentile(np.asarray(retained, dtype=float), q))
        got = hist.percentile(q)
        assert got == expected or math.isclose(got, expected, rel_tol=1e-12, abs_tol=1e-12)

    @given(samples=finite_samples)
    @settings(max_examples=100, deadline=None)
    def test_mean_matches_numpy(self, samples):
        hist = Histogram("h_test", window=4096, buckets=(1.0,))
        for s in samples:
            hist.observe(s)
        assert math.isclose(
            hist.mean(), float(np.mean(samples)), rel_tol=1e-9, abs_tol=1e-9
        )

    @given(
        a=finite_samples,
        b=finite_samples,
        q=quantiles,
    )
    @settings(max_examples=100, deadline=None)
    def test_labelled_series_are_independent(self, a, b, q):
        """Observations of one label series never leak into another."""
        hist = Histogram("h_test", window=4096, buckets=(1.0,), labels=("backend",))
        for s in a:
            hist.observe(s, backend="smat")
        for s in b:
            hist.observe(s, backend="cublas")
        for name, samples in (("smat", a), ("cublas", b)):
            expected = float(np.percentile(np.asarray(samples, dtype=float), q))
            got = hist.percentile(q, backend=name)
            assert got == expected or math.isclose(
                got, expected, rel_tol=1e-12, abs_tol=1e-12
            )
        assert hist.count == len(a) + len(b)

    @given(samples=finite_samples)
    @settings(max_examples=50, deadline=None)
    def test_bucket_counts_are_cumulative_and_total(self, samples):
        hist = Histogram("h_test", window=16, buckets=(0.1, 1.0, 10.0))
        for s in samples:
            hist.observe(s)
        buckets = hist.bucket_counts()
        counts = [c for _, c in buckets]
        assert counts == sorted(counts)  # cumulative => monotone
        assert buckets[-1][0] == math.inf
        assert buckets[-1][1] == len(samples)  # +Inf bucket sees everything


label_values = st.text(
    alphabet=st.characters(whitelist_categories=("Ll", "Lu", "Nd")),
    min_size=1,
    max_size=8,
)

increments = st.lists(
    st.tuples(
        label_values,  # endpoint
        label_values,  # tenant
        st.floats(min_value=0.0, max_value=1e6, allow_nan=False),
    ),
    min_size=1,
    max_size=50,
)


class TestLabelMergeOrderIndependence:
    @given(incs=increments, seed=st.integers(0, 2**32 - 1))
    @settings(max_examples=150, deadline=None)
    def test_counter_totals_invariant_under_permutation(self, incs, seed):
        rng = np.random.default_rng(seed)
        order = rng.permutation(len(incs))

        def run(sequence):
            counter = MetricsRegistry().counter(
                "c_test", labels=("endpoint", "tenant")
            )
            for endpoint, tenant, amount in sequence:
                counter.inc(amount, endpoint=endpoint, tenant=tenant)
            return counter

        forward = run(incs)
        permuted = run([incs[i] for i in order])

        assert math.isclose(forward.total(), permuted.total(), rel_tol=1e-9)
        assert sorted(forward.samples()) == sorted(
            [(k, v) for k, v in permuted.samples()]
        ) or all(
            math.isclose(v1, v2, rel_tol=1e-9)
            for (_, v1), (_, v2) in zip(forward.samples(), permuted.samples())
        )
        for label in ("endpoint", "tenant"):
            agg_f = forward.sum_by(label)
            agg_p = permuted.sum_by(label)
            assert set(agg_f) == set(agg_p)
            for k in agg_f:
                assert math.isclose(agg_f[k], agg_p[k], rel_tol=1e-9)

    @given(incs=increments, seed=st.integers(0, 2**32 - 1))
    @settings(max_examples=100, deadline=None)
    def test_gauge_inc_invariant_under_permutation(self, incs, seed):
        rng = np.random.default_rng(seed)
        order = rng.permutation(len(incs))

        def run(sequence):
            gauge = MetricsRegistry().gauge("g_test", labels=("endpoint", "tenant"))
            for endpoint, tenant, amount in sequence:
                gauge.inc(amount, endpoint=endpoint, tenant=tenant)
            return gauge

        forward = run(incs)
        permuted = run([incs[i] for i in order])
        f = dict(forward.samples())
        p = dict(permuted.samples())
        assert set(f) == set(p)
        for k in f:
            assert math.isclose(f[k], p[k], rel_tol=1e-9)


class TestRenderedExpositionProperties:
    @given(
        samples=st.lists(
            st.tuples(
                st.sampled_from(["smat", "cublas", "dasp"]),
                st.floats(min_value=0.0, max_value=1e6, allow_nan=False),
            ),
            min_size=0,
            max_size=60,
        )
    )
    @settings(max_examples=75, deadline=None)
    def test_labelled_histogram_exposition_parses_and_adds_up(self, samples):
        """The rendered text parses, and each series' +Inf bucket and
        _count line equal that series' observation count."""
        registry = MetricsRegistry()
        hist = registry.histogram(
            "h_render", buckets=(0.5, 5.0), window=32, labels=("backend",)
        )
        per_backend = {}
        for backend, value in samples:
            hist.observe(value, backend=backend)
            per_backend[backend] = per_backend.get(backend, 0) + 1
        parsed = parse_prometheus(registry.render_prometheus())
        for backend, n in per_backend.items():
            inf_buckets = [
                v
                for name, labels, v in parsed
                if name == "h_render_bucket"
                and labels.get("backend") == backend
                and labels.get("le") == "+Inf"
            ]
            counts = [
                v
                for name, labels, v in parsed
                if name == "h_render_count" and labels.get("backend") == backend
            ]
            assert inf_buckets == [float(n)]
            assert counts == [float(n)]
