"""Tests for the CSV/JSON export helpers."""

import csv
import json

import numpy as np
import pytest

from repro.analysis import measurements_to_rows, rows_to_csv, rows_to_json
from repro.core import compare_libraries
from repro.matrices import uniform_random


@pytest.fixture
def rows():
    return [
        {"matrix": "m1", "SMaT": 100.0, "DASP": 25.0},
        {"matrix": "m2", "SMaT": 200.0, "cuSPARSE": 10.0},
    ]


class TestCSV:
    def test_roundtrip(self, rows, tmp_path):
        path = rows_to_csv(rows, tmp_path / "out.csv")
        with path.open() as fh:
            read = list(csv.DictReader(fh))
        assert len(read) == 2
        assert read[0]["matrix"] == "m1"
        assert float(read[0]["SMaT"]) == 100.0

    def test_union_of_columns(self, rows, tmp_path):
        path = rows_to_csv(rows, tmp_path / "out.csv")
        header = path.read_text().splitlines()[0].split(",")
        assert header == ["matrix", "SMaT", "DASP", "cuSPARSE"]

    def test_missing_values_empty(self, rows, tmp_path):
        path = rows_to_csv(rows, tmp_path / "out.csv")
        with path.open() as fh:
            read = list(csv.DictReader(fh))
        assert read[1]["DASP"] == ""

    def test_empty_rows(self, tmp_path):
        path = rows_to_csv([], tmp_path / "empty.csv")
        assert path.read_text().strip() == ""


class TestJSON:
    def test_roundtrip(self, rows, tmp_path):
        path = rows_to_json(rows, tmp_path / "out.json")
        data = json.loads(path.read_text())
        assert data[1]["SMaT"] == 200.0

    def test_numpy_scalars_serialised(self, tmp_path):
        rows = [{"x": np.float64(1.5), "y": np.int64(3)}]
        path = rows_to_json(rows, tmp_path / "np.json")
        data = json.loads(path.read_text())
        assert data[0]["x"] == 1.5
        assert data[0]["y"] == 3.0


class TestMeasurementsExport:
    def test_full_pipeline_export(self, rng, tmp_path):
        A = uniform_random(256, 256, density=0.02, rng=rng)
        B = rng.normal(size=(256, 4)).astype(np.float32)
        measurements = compare_libraries(A, B, libraries=("smat", "cusparse"))
        rows = measurements_to_rows(measurements)
        assert [r["library"] for r in rows] == ["SMaT", "cuSPARSE"]
        path = rows_to_csv(rows, tmp_path / "comparison.csv")
        content = path.read_text()
        assert "SMaT" in content and "gflops" in content
