"""Graph-operator constructions in the formats layer."""

import numpy as np
import pytest

from repro.formats import (
    CSRMatrix,
    add_self_loops,
    degree_vector,
    extract_diagonal,
    gcn_normalize,
    transition_matrix,
)
from repro.matrices import band_matrix, scale_free_graph, uniform_random


class TestDegreeAndDiagonal:
    def test_degree_matches_dense_row_sums(self, rng):
        A = uniform_random(64, 48, density=0.1, rng=rng)
        dense = np.abs(A.to_dense().astype(np.float64))
        np.testing.assert_allclose(degree_vector(A), dense.sum(axis=1), rtol=1e-6)
        np.testing.assert_allclose(degree_vector(A, axis=0), dense.sum(axis=0), rtol=1e-6)

    def test_signed_degree(self, rng):
        A = uniform_random(32, 32, density=0.2, rng=rng)
        dense = A.to_dense().astype(np.float64)
        np.testing.assert_allclose(
            degree_vector(A, absolute=False), dense.sum(axis=1), rtol=1e-5, atol=1e-6
        )

    def test_degree_rejects_bad_axis(self, rng):
        with pytest.raises(ValueError, match="axis"):
            degree_vector(uniform_random(8, 8, density=0.5, rng=rng), axis=2)

    def test_extract_diagonal(self, rng):
        A = uniform_random(40, 40, density=0.15, rng=rng)
        np.testing.assert_allclose(extract_diagonal(A), np.diag(A.to_dense()))


class TestSelfLoops:
    def test_adds_missing_diagonal(self, rng):
        A = scale_free_graph(64, avg_degree=4.0, rng=rng)  # no self-edges
        loops = add_self_loops(A, value=2.5)
        dense = loops.to_dense()
        np.testing.assert_allclose(np.diag(dense), 2.5)
        np.testing.assert_allclose(
            dense - np.diag(np.diag(dense)), A.to_dense(), rtol=1e-6
        )

    def test_sums_with_existing_diagonal(self):
        A = CSRMatrix.from_dense(np.diag([1.0, 2.0, 3.0]).astype(np.float32))
        loops = add_self_loops(A, value=1.0)
        np.testing.assert_allclose(np.diag(loops.to_dense()), [2.0, 3.0, 4.0])

    def test_rejects_rectangular(self, rng):
        with pytest.raises(ValueError, match="square"):
            add_self_loops(uniform_random(8, 4, density=0.5, rng=rng))


class TestGCNNormalize:
    def test_matches_dense_formula(self, rng):
        A = scale_free_graph(96, avg_degree=6.0, rng=rng)
        a_hat = gcn_normalize(A)
        dense = A.to_dense().astype(np.float64) + np.eye(96)
        degree = np.abs(dense).sum(axis=1)
        d_inv_sqrt = np.diag(1.0 / np.sqrt(degree))
        np.testing.assert_allclose(
            a_hat.to_dense(), d_inv_sqrt @ dense @ d_inv_sqrt, rtol=1e-4, atol=1e-6
        )

    def test_every_diagonal_entry_nonzero(self, rng):
        A = scale_free_graph(64, avg_degree=4.0, rng=rng)
        assert np.all(np.abs(np.diag(gcn_normalize(A).to_dense())) > 0)

    def test_no_self_loops_variant(self, rng):
        A = band_matrix(32, 4, rng=rng)
        a_hat = gcn_normalize(A, self_loops=False)
        assert a_hat.nnz == A.nnz


class TestTransitionMatrix:
    def test_columns_are_stochastic(self, rng):
        A = scale_free_graph(128, avg_degree=6.0, rng=rng)
        M = transition_matrix(A)
        col_sums = M.to_dense().astype(np.float64).sum(axis=0)
        out_degree = degree_vector(A)
        np.testing.assert_allclose(col_sums[out_degree > 0], 1.0, rtol=1e-5)

    def test_dangling_mask_and_zero_columns(self):
        dense = np.array([[0.0, 1.0], [0.0, 0.0]], dtype=np.float32)
        A = CSRMatrix.from_dense(dense)
        dangling = np.zeros(2, dtype=bool)
        M = transition_matrix(A, dangling=dangling)
        assert list(dangling) == [False, True]  # row 1 has no out-edges
        np.testing.assert_allclose(M.to_dense().sum(axis=0), [1.0, 0.0])

    def test_signed_weights_enter_by_magnitude(self, rng):
        A = uniform_random(32, 32, density=0.2, rng=rng)  # signed values
        M = transition_matrix(A)
        assert np.all(M.val >= 0)

    def test_rejects_rectangular(self, rng):
        with pytest.raises(ValueError, match="square"):
            transition_matrix(uniform_random(8, 4, density=0.5, rng=rng))
