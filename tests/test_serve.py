"""The HTTP serving daemon: wire format, tenancy, admission, endpoints.

Unit layers (wire codecs, authenticator, quotas, registry, admission
controller) are tested directly; the HTTP surface is tested end to end
against a live in-process :class:`~repro.serve.SpMMServer` on an
ephemeral port, through both the stdlib :class:`~repro.serve.SpMMClient`
and raw ``urllib`` requests (for header-level assertions).
"""

import io
import json
import threading
import time
import urllib.error
import urllib.request

import numpy as np
import pytest

from repro import SMaT, SMaTConfig
from repro.core.plan import matrix_fingerprint
from repro.matrices import band_matrix
from repro.serve import (
    AdmissionController,
    Authenticator,
    BadRequest,
    MatrixRegistry,
    NotFound,
    Overloaded,
    PlanQuota,
    QuotaExceeded,
    ServeClientError,
    SpMMClient,
    SpMMServer,
    Tenant,
    Unauthorized,
    decode_array,
    decode_csr,
    encode_array,
    encode_csr,
    parse_token_specs,
)

N = 480


@pytest.fixture(scope="module")
def A():
    return band_matrix(N, 8)


@pytest.fixture(scope="module")
def B(A):
    rng = np.random.default_rng(7)
    return rng.standard_normal((A.ncols, 8)).astype(np.float32)


@pytest.fixture(scope="module")
def open_server():
    with SpMMServer(max_workers=2) as server:
        yield server


@pytest.fixture(scope="module")
def client(open_server):
    return SpMMClient(open_server.url)


class TestWireFormat:
    def test_array_roundtrip_packed(self):
        for arr in (
            np.arange(12, dtype=np.float32).reshape(3, 4),
            np.array([1, 2, 3], dtype=np.int64),
            np.zeros((0, 5), dtype=np.float64),
        ):
            out = decode_array(encode_array(arr))
            assert out.dtype == arr.dtype and out.shape == arr.shape
            np.testing.assert_array_equal(out, arr)

    def test_decoded_arrays_are_writable(self):
        out = decode_array(encode_array(np.ones(4, dtype=np.float32)))
        out[0] = 2.0  # CSR construction sorts row segments in place

    def test_array_accepts_nested_lists(self):
        out = decode_array([[1.0, 2.0], [3.0, 4.0]])
        assert out.shape == (2, 2)

    def test_array_rejects_malformed(self):
        with pytest.raises(BadRequest):
            decode_array({"dtype": "float32", "shape": [4]})  # no data
        with pytest.raises(BadRequest):
            decode_array({"dtype": "object", "shape": [1], "data_b64": "AA=="})
        with pytest.raises(BadRequest):
            decode_array(
                {"dtype": "float32", "shape": [100], "data_b64": "AAAA"}
            )  # length mismatch
        with pytest.raises(BadRequest):
            decode_array("not an array")

    def test_csr_roundtrip_preserves_fingerprint(self, A):
        out = decode_csr(encode_csr(A))
        assert out.shape == A.shape and out.nnz == A.nnz
        assert matrix_fingerprint(out) == matrix_fingerprint(A)


class TestAuthUnits:
    def test_open_mode_accepts_anything(self):
        auth = Authenticator(None)
        assert auth.open
        assert auth.authenticate(None).name == "anonymous"
        assert auth.authenticate("Bearer whatever").name == "anonymous"

    def test_token_resolution_and_failures(self):
        auth = Authenticator({"tok": Tenant("alice"), "other": "bob"})
        assert not auth.open
        assert auth.authenticate("Bearer tok").name == "alice"
        assert auth.authenticate("bearer other").name == "bob"  # scheme is case-insensitive
        for bad in (None, "", "Basic tok", "Bearer", "Bearer  ", "Bearer nope"):
            with pytest.raises(Unauthorized):
                auth.authenticate(bad)

    def test_plan_quota_idempotent_per_key(self):
        quota = PlanQuota()
        tenant = Tenant("t", max_plans=2)
        quota.charge(tenant, "k1")
        quota.charge(tenant, "k1")  # re-use is free
        quota.charge(tenant, "k2")
        assert quota.used("t") == 2
        with pytest.raises(QuotaExceeded):
            quota.charge(tenant, "k3")

    def test_parse_token_specs(self):
        tokens = parse_token_specs(["alice=sekret", "bob:4:9=hunter2"])
        assert tokens["sekret"].name == "alice"
        assert tokens["hunter2"] == Tenant("bob", max_matrices=4, max_plans=9)
        for bad in ("noequals", "=tok", "name=", "a:b=t", "a:1:2:3=t"):
            with pytest.raises(ValueError):
                parse_token_specs([bad])


class TestRegistryUnits:
    def test_content_addressed_and_tenant_visible(self, A):
        registry = MatrixRegistry()
        alice, bob = Tenant("alice"), Tenant("bob")
        fp, created = registry.register(A, alice)
        assert created and fp == matrix_fingerprint(A)
        assert registry.register(A, alice) == (fp, False)  # idempotent
        assert registry.register(A, bob) == (fp, True)  # own registration
        assert registry.count() == 1  # one shared copy
        assert registry.get(fp, alice) is registry.get(fp, bob)
        with pytest.raises(NotFound):
            registry.get(fp, Tenant("eve"))

    def test_delete_frees_storage_when_last_reference_drops(self, A):
        registry = MatrixRegistry()
        alice, bob = Tenant("alice"), Tenant("bob")
        fp, _ = registry.register(A, alice)
        registry.register(A, bob)
        registry.delete(fp, alice)
        assert registry.count() == 1  # bob still holds it
        registry.delete(fp, bob)
        assert registry.count() == 0
        with pytest.raises(NotFound):
            registry.delete(fp, bob)

    def test_tenant_quota_and_global_capacity(self, A):
        registry = MatrixRegistry(capacity=1)
        small = Tenant("small", max_matrices=1)
        registry.register(A, small)
        with pytest.raises(QuotaExceeded):
            registry.register(band_matrix(N, 4), small)  # tenant quota
        with pytest.raises(QuotaExceeded):
            registry.register(band_matrix(N, 4), Tenant("other"))  # global cap


class TestAdmissionUnits:
    def test_slots_release_and_count(self):
        adm = AdmissionController(max_inflight=2, max_queue=0)
        with adm.admit():
            assert adm.inflight == 1
            with adm.admit():
                assert adm.inflight == 2
                with pytest.raises(Overloaded):
                    with adm.admit():
                        pass
        assert adm.inflight == 0 and adm.rejected == 1

    def test_queue_wait_then_timeout(self):
        adm = AdmissionController(max_inflight=1, max_queue=1, queue_timeout_s=0.05)
        with adm.admit():
            with pytest.raises(Overloaded):
                with adm.admit():  # waits 0.05s, then sheds
                    pass
        assert adm.rejected == 1

    def test_queued_request_gets_freed_slot(self):
        adm = AdmissionController(max_inflight=1, max_queue=1, queue_timeout_s=2.0)
        entered = threading.Event()
        release = threading.Event()

        def hold():
            with adm.admit():
                entered.set()
                release.wait(timeout=5.0)

        holder = threading.Thread(target=hold)
        holder.start()
        assert entered.wait(timeout=5.0)
        acquired = []

        def waiter():
            with adm.admit():
                acquired.append(True)

        waiting = threading.Thread(target=waiter)
        waiting.start()
        release.set()
        waiting.join(timeout=5.0)
        holder.join(timeout=5.0)
        assert acquired == [True]
        assert adm.rejected == 0


class TestHappyPath:
    def test_register_is_idempotent_and_content_addressed(self, client, A):
        fp = client.register(A)
        assert fp == client.register(A) == matrix_fingerprint(A)
        assert fp in [m["fingerprint"] for m in client.list_matrices()]

    def test_multiply_matches_inprocess_smat(self, client, A, B):
        fp = client.register(A)
        C, info = client.multiply(fp, B)
        C2, info2 = client.multiply(fp, B)
        assert info2["cache_hit"]
        np.testing.assert_allclose(C, SMaT(A).multiply(B), rtol=1e-4, atol=1e-5)
        np.testing.assert_allclose(C2, C)
        assert info2["report"]["backend"] == "smat"

    def test_multiply_with_config_override(self, client, A, B):
        fp = client.register(A)
        C, info = client.multiply(fp, B, config={"kernel": "cusparse"})
        assert info["report"]["backend"] == "cusparse"
        ref = SMaT(A, SMaTConfig(kernel="cusparse")).multiply(B)
        np.testing.assert_allclose(C, ref, rtol=1e-4, atol=1e-4)

    def test_async_job_roundtrip_and_single_consumption(self, client, A, B):
        fp = client.register(A)
        job = client.submit(fp, B)
        C = client.result(job)
        np.testing.assert_allclose(C, SMaT(A).multiply(B), rtol=1e-4, atol=1e-5)
        with pytest.raises(ServeClientError) as err:
            client.poll(job)  # consumed on the successful poll
        assert err.value.status == 404

    def test_stream_returns_results_in_order(self, client, A):
        rng = np.random.default_rng(3)
        Bs = [rng.standard_normal((A.ncols, 4)).astype(np.float32) for _ in range(7)]
        fp = client.register(A)
        results = list(client.stream(fp, Bs))
        assert [i for i, _ in results] == list(range(7))
        for (_, C), B_i in zip(results, Bs):
            np.testing.assert_allclose(C, SMaT(A).multiply(B_i), rtol=1e-4, atol=1e-5)

    def test_healthz_and_request_id_header(self, open_server):
        req = urllib.request.Request(open_server.url + "/healthz")
        with urllib.request.urlopen(req, timeout=10) as resp:
            assert resp.status == 200
            assert resp.headers["X-Request-ID"]
            assert json.loads(resp.read())["status"] == "ok"


class TestErrorPaths:
    def test_unknown_fingerprint_is_404(self, client, B):
        with pytest.raises(ServeClientError) as err:
            client.multiply("0" * 32, B)
        assert err.value.status == 404 and err.value.code == "not_found"

    def test_unknown_route_is_404(self, open_server):
        with pytest.raises(urllib.error.HTTPError) as err:
            urllib.request.urlopen(open_server.url + "/nope", timeout=10)
        assert err.value.code == 404

    def test_mismatched_operand_shape_is_400(self, client, A):
        fp = client.register(A)
        with pytest.raises(ServeClientError) as err:
            client.multiply(fp, np.ones((3, 2), dtype=np.float32))
        assert err.value.status == 400

    def test_unknown_config_field_is_400(self, client, A, B):
        fp = client.register(A)
        with pytest.raises(ServeClientError) as err:
            client.multiply(fp, B, config={"blocksize": 16})
        assert err.value.status == 400 and "blocksize" in str(err.value)

    def test_invalid_json_body_is_400(self, open_server):
        req = urllib.request.Request(
            open_server.url + "/multiply", data=b"not json", method="POST"
        )
        with pytest.raises(urllib.error.HTTPError) as err:
            urllib.request.urlopen(req, timeout=10)
        assert err.value.code == 400

    def test_oversized_payload_is_413(self, A):
        with SpMMServer(max_workers=1, max_body_bytes=1024) as server:
            with pytest.raises(ServeClientError) as err:
                SpMMClient(server.url).register(A)
            assert err.value.status == 413
            assert err.value.code == "payload_too_large"
            deadline = time.time() + 5.0
            while server.metrics.requests_total < 1 and time.time() < deadline:
                time.sleep(0.005)
            snap = server.metrics.snapshot()
            assert snap["rejected"] == {"payload_too_large": 1}


class TestAuthOverHTTP:
    TOKENS = {"sekret": Tenant("alice", max_matrices=1, max_plans=1), "hunter2": "bob"}

    def test_missing_or_bad_token_is_401(self, A):
        with SpMMServer(max_workers=1, tokens=self.TOKENS) as server:
            anon = SpMMClient(server.url)
            anon.health()  # healthz stays open
            with pytest.raises(ServeClientError) as err:
                anon.register(A)
            assert err.value.status == 401 and err.value.code == "unauthorized"
            with pytest.raises(ServeClientError) as err:
                SpMMClient(server.url, token="wrong").register(A)
            assert err.value.status == 401

    def test_registration_quota_429_with_retry_after(self, A):
        with SpMMServer(max_workers=1, tokens=self.TOKENS) as server:
            alice = SpMMClient(server.url, token="sekret")
            alice.register(A)
            with pytest.raises(ServeClientError) as err:
                alice.register(band_matrix(N, 4))
            assert err.value.status == 429 and err.value.code == "quota_exceeded"
            assert err.value.retry_after is not None and err.value.retry_after >= 1

    def test_plan_quota_429(self, A, B):
        with SpMMServer(max_workers=1, tokens=self.TOKENS) as server:
            alice = SpMMClient(server.url, token="sekret")
            fp = alice.register(A)
            alice.multiply(fp, B)  # charges the single plan slot
            alice.multiply(fp, B)  # same key, free
            with pytest.raises(ServeClientError) as err:
                alice.multiply(fp, B, config={"kernel": "cusparse"})
            assert err.value.status == 429 and err.value.code == "quota_exceeded"

    def test_cross_tenant_isolation(self, A, B):
        with SpMMServer(max_workers=1, tokens=self.TOKENS) as server:
            alice = SpMMClient(server.url, token="sekret")
            bob = SpMMClient(server.url, token="hunter2")
            fp = alice.register(A)
            with pytest.raises(ServeClientError) as err:
                bob.multiply(fp, B)  # bob never registered it
            assert err.value.status == 404
            job = alice.submit(fp, B)
            alice.result(job)
            fp_b = bob.register(A)  # same content, own registration
            assert fp_b == fp
            assert server.registry.count() == 1

    def test_job_ids_do_not_leak_across_tenants(self, A, B):
        with SpMMServer(max_workers=1, tokens=self.TOKENS) as server:
            alice = SpMMClient(server.url, token="sekret")
            bob = SpMMClient(server.url, token="hunter2")
            fp = alice.register(A)
            job = alice.submit(fp, B)
            with pytest.raises(ServeClientError) as err:
                bob.poll(job)
            assert err.value.status == 404  # not "forbidden": ids must not leak
            alice.result(job)


class TestOverload:
    def test_full_admission_queue_is_429_with_retry_after(self, A, B):
        with SpMMServer(
            max_workers=1, max_inflight=1, max_queue=0, queue_timeout_s=0.05
        ) as server:
            client = SpMMClient(server.url)
            fp = client.register(A)
            with server.admission.admit():  # occupy the only slot
                with pytest.raises(ServeClientError) as err:
                    client.multiply(fp, B)
            assert err.value.status == 429 and err.value.code == "overloaded"
            assert err.value.retry_after is not None
            client.multiply(fp, B)  # slot free again: admitted

    def test_job_backlog_bound_is_429(self, A, B):
        with SpMMServer(max_workers=1, max_pending_jobs=0) as server:
            client = SpMMClient(server.url)
            fp = client.register(A)
            with pytest.raises(ServeClientError) as err:
                client.submit(fp, B)
            assert err.value.status == 429 and err.value.code == "overloaded"


class TestObservability:
    def test_metrics_counter_deltas(self, A, B):
        with SpMMServer(max_workers=1) as server:
            client = SpMMClient(server.url)
            before = client.metrics()
            fp = client.register(A)
            client.multiply(fp, B)
            client.multiply(fp, B)
            # a response is written before its request is accounted, so
            # wait for the server side to catch up before scraping
            deadline = time.time() + 5.0
            while server.metrics.requests_total < 4 and time.time() < deadline:
                time.sleep(0.005)
            after = client.metrics()

            # register + two multiplies + the first scrape itself (a scrape
            # is accounted after its snapshot is built, so 'after' excludes
            # only its own request)
            delta = after["requests_total"] - before["requests_total"]
            assert delta == 4
            assert after["requests_by_endpoint"]["POST /multiply"] == 2
            assert after["requests_by_endpoint"]["POST /matrices"] == 1
            assert after["responses_by_status"]["200"] >= 2
            assert after["responses_by_status"]["201"] == 1
            assert after["plan_cache"]["hits"] == 1
            assert after["plan_cache"]["misses"] == 1
            assert after["engine"]["completed"] == 2
            assert after["matrices_registered"] == 1
            assert after["bytes_in"] > before["bytes_in"]
            assert after["latency_ms"]["count"] >= 3

    def test_rejections_are_counted_by_reason(self, A, B):
        tokens = {"t": Tenant("solo", max_matrices=1, max_plans=1)}
        with SpMMServer(max_workers=1, tokens=tokens) as server:
            solo = SpMMClient(server.url, token="t")
            with pytest.raises(ServeClientError):
                SpMMClient(server.url).register(A)  # 401
            fp = solo.register(A)
            with pytest.raises(ServeClientError):
                solo.register(band_matrix(N, 4))  # 429 quota
            solo.multiply(fp, B)
            deadline = time.time() + 5.0
            while server.metrics.requests_total < 4 and time.time() < deadline:
                time.sleep(0.005)
            rejected = solo.metrics()["rejected"]
            assert rejected["unauthorized"] == 1
            assert rejected["quota_exceeded"] == 1

    def test_structured_request_log(self, A, B):
        log = io.StringIO()
        with SpMMServer(max_workers=1, log_stream=log) as server:
            client = SpMMClient(server.url)
            fp = client.register(A)
            client.multiply(fp, B)
        records = [json.loads(line) for line in log.getvalue().splitlines()]
        assert [r["path"] for r in records] == ["/matrices", "/multiply"]
        assert all(r["event"] == "request" for r in records)
        assert all(
            {"ts", "request_id", "method", "tenant", "status", "wall_ms", "bytes_in"}
            <= set(r)
            for r in records
        )
        assert len({r["request_id"] for r in records}) == 2
        assert records[0]["status"] == 201 and records[1]["status"] == 200


class TestLifecycle:
    def test_close_is_idempotent_and_closes_owned_engine(self):
        server = SpMMServer(max_workers=1)
        server.start()
        server.close()
        server.close()
        with pytest.raises(RuntimeError):
            server.engine.multiply(band_matrix(N, 4), np.ones((N, 2), dtype=np.float32))

    def test_external_engine_is_not_closed(self, A, B):
        from repro.engine import SpMMEngine

        with SpMMEngine(max_workers=1) as engine:
            with SpMMServer(engine=engine) as server:
                client = SpMMClient(server.url)
                fp = client.register(A)
                client.multiply(fp, B)
            engine.multiply(A, B)  # still open after the server shut down

    def test_url_resolves_ephemeral_port(self, open_server):
        host, port = open_server.address
        assert port > 0
        assert open_server.url == f"http://{host}:{port}"
