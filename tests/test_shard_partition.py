"""Partitioner: balanced bounds, modes, grids, and shard extraction."""

import numpy as np
import pytest

from repro import SMaTConfig
from repro.core.plan import matrix_fingerprint
from repro.matrices import block_band_matrix, suitesparse, uniform_random
from repro.shard import (
    make_partition,
    parse_grid,
    partition_grid,
    partition_rows,
    shard_fingerprint,
)
from repro.shard.plan import ensure_shard_fingerprints


class TestParseGrid:
    @pytest.mark.parametrize(
        "spec,expected",
        [
            (4, (4, 1)),
            ("4", (4, 1)),
            ("2x2", (2, 2)),
            ("3X2", (3, 2)),
            ((2, 3), (2, 3)),
            (np.int64(5), (5, 1)),
        ],
    )
    def test_accepted_forms(self, spec, expected):
        assert parse_grid(spec) == expected

    @pytest.mark.parametrize("spec", ["", "2x2x2", "axb", 0, (0, 2), (2, -1), object()])
    def test_rejected_forms(self, spec):
        with pytest.raises(ValueError):
            parse_grid(spec)


class TestRowPartition:
    def test_covers_all_rows_disjointly(self, medium_random):
        part = partition_rows(medium_random, 4)
        assert part.grid == (4, 1)
        bounds = part.row_bounds
        assert bounds[0] == 0 and bounds[-1] == medium_random.nrows
        assert np.all(np.diff(bounds) >= 0)
        assert sum(s.nnz for s in part) == medium_random.nnz

    def test_shards_reconstruct_parent(self, medium_random):
        part = partition_rows(medium_random, 3)
        dense = np.vstack([s.matrix.to_dense() for s in part])
        np.testing.assert_array_equal(dense, medium_random.to_dense())

    def test_nnz_balance_on_standin(self):
        A = suitesparse.load("cant", scale=0.1)
        part = partition_rows(A, 4)
        # acceptance criterion: <= 1.25 for the nnz-balanced mode
        assert part.imbalance <= 1.25

    def test_bounds_aligned_to_block_rows(self, medium_random):
        part = partition_rows(medium_random, 4, config=SMaTConfig(block_shape=(16, 8)))
        assert np.all(part.row_bounds[1:-1] % 16 == 0)

    def test_single_shard_is_whole_matrix(self, medium_random):
        part = partition_rows(medium_random, 1)
        assert part.n_shards == 1
        assert part.shards[0].matrix.shape == medium_random.shape
        assert part.imbalance == 1.0


class TestGridPartition:
    def test_cells_cover_matrix(self, medium_random):
        part = partition_grid(medium_random, (2, 3))
        assert part.n_shards == 6
        assert sum(s.nnz for s in part) == medium_random.nnz
        for i in range(2):
            assert part.col_bounds[i, 0] == 0
            assert part.col_bounds[i, -1] == medium_random.ncols
            assert np.all(np.diff(part.col_bounds[i]) >= 0)

    def test_cell_contents_match_dense_slices(self, medium_random):
        part = partition_grid(medium_random, "2x2")
        dense = medium_random.to_dense()
        for s in part:
            np.testing.assert_array_equal(
                s.matrix.to_dense(),
                dense[s.row_start : s.row_stop, s.col_start : s.col_stop],
            )

    def test_per_panel_column_split_balances_banded(self):
        # a block-band matrix concentrates nnz near the diagonal: a global
        # column split would put everything in the diagonal cells, the
        # per-row-panel split keeps cells balanced
        A = block_band_matrix(768, block_size=8, block_bandwidth=3, rng=np.random.default_rng(0))
        part = partition_grid(A, (2, 2))
        assert part.imbalance <= 1.3

    def test_2x2_acceptance_on_cant(self):
        A = suitesparse.load("cant", scale=0.1)
        part = partition_grid(A, "2x2")
        assert part.imbalance <= 1.25

    def test_empty_cells_allowed(self):
        # a matrix with one dense row: extra panels come out empty
        A = uniform_random(8, 64, density=0.5, rng=np.random.default_rng(1))
        part = partition_rows(A, 6)
        assert part.n_shards == 6
        assert sum(s.nnz for s in part) == A.nnz


class TestCostMode:
    def test_cost_mode_balances_and_reconstructs(self):
        A = suitesparse.load("cant", scale=0.05)
        part = partition_rows(A, 4, mode="cost")
        assert part.weight_unit == "s"
        assert part.weight_imbalance <= 1.5
        assert sum(s.nnz for s in part) == A.nnz

    def test_cost_weights_in_seconds(self):
        A = suitesparse.load("cant", scale=0.05)
        part = partition_rows(A, 2, mode="cost")
        # predicted per-shard cost must be positive and tiny (seconds)
        for s in part:
            assert 0.0 < s.weight < 1.0

    def test_unknown_mode_rejected(self, medium_random):
        with pytest.raises(ValueError, match="mode"):
            make_partition(medium_random, 2, mode="banana")

    def test_non_csr_rejected(self):
        with pytest.raises(TypeError):
            make_partition(np.eye(4), 2)


class TestShardFingerprints:
    def test_derived_fingerprints_are_distinct_and_stable(self, medium_random):
        part = partition_grid(medium_random, (2, 2))
        ensure_shard_fingerprints(part)
        fps = [matrix_fingerprint(s.matrix) for s in part]
        assert len(set(fps)) == len(fps)
        parent = matrix_fingerprint(medium_random)
        for s, fp in zip(part, fps):
            assert fp == shard_fingerprint(parent, s)

    def test_derived_equals_content_identity(self, medium_random):
        # two partitions of the same matrix derive the same shard keys
        p1 = partition_rows(medium_random, 3)
        p2 = partition_rows(medium_random, 3)
        ensure_shard_fingerprints(p1)
        ensure_shard_fingerprints(p2)
        for a, b in zip(p1, p2):
            assert matrix_fingerprint(a.matrix) == matrix_fingerprint(b.matrix)

    def test_different_bounds_different_fingerprint(self, medium_random):
        p1 = partition_rows(medium_random, 2)
        p2 = partition_grid(medium_random, (2, 2))
        ensure_shard_fingerprints(p1)
        ensure_shard_fingerprints(p2)
        assert matrix_fingerprint(p1.shards[0].matrix) != matrix_fingerprint(p2.shards[0].matrix)
