"""Tests for the SuiteSparse Table-I stand-in registry."""

import numpy as np
import pytest

from repro.matrices import suitesparse
from repro.matrices.suitesparse import TABLE1, TABLE1_NAMES

#: stand-ins are generated at a small scale for speed
SCALE = 0.03


class TestRegistry:
    def test_table1_has_nine_matrices(self):
        assert len(TABLE1) == 9
        assert len(TABLE1_NAMES) == 9

    def test_paper_metadata_matches_table1(self):
        info = suitesparse.info("cop20k_A")
        assert info.nrows == 121_192
        assert info.domain == "2D/3D mesh"
        info = suitesparse.info("dc2")
        assert info.nnz == 766_396
        assert info.domain == "circuit simulation"

    def test_sparsity_metadata_matches_paper(self):
        # Table I reports these sparsity percentages
        expected = {
            "mip1": 0.9976,
            "conf5_4-8x8": 0.9992,
            "cant": 0.9989,
            "pdb1HYS": 0.9967,
            "rma10": 0.9989,
            "cop20k_A": 0.9998,
            "consph": 0.9991,
            "shipsec1": 0.9996,
            "dc2": 0.9999,
        }
        for name, sparsity in expected.items():
            assert suitesparse.info(name).sparsity == pytest.approx(sparsity, abs=2e-4)

    def test_case_insensitive_lookup(self):
        assert suitesparse.info("MIP1").name == "mip1"

    def test_unknown_matrix_raises(self):
        with pytest.raises(KeyError):
            suitesparse.info("not_a_matrix")

    def test_invalid_scale(self):
        with pytest.raises(ValueError):
            suitesparse.load("dc2", scale=0.0)
        with pytest.raises(ValueError):
            suitesparse.load("dc2", scale=1.5)


class TestGeneratedStandins:
    @pytest.mark.parametrize("name", TABLE1_NAMES)
    def test_standin_is_square_and_nonempty(self, name):
        m = suitesparse.load(name, scale=SCALE)
        assert m.nrows == m.ncols
        assert m.nnz > 0

    @pytest.mark.parametrize("name", TABLE1_NAMES)
    def test_nnz_per_row_matches_paper(self, name):
        """The per-row non-zero density of the stand-in should match the real
        matrix within a factor of two (that is what determines blocking
        behaviour at any scale)."""
        meta = suitesparse.info(name)
        m = suitesparse.load(name, scale=SCALE)
        standin_per_row = m.nnz / m.nrows
        assert 0.5 * meta.nnz_per_row <= standin_per_row <= 2.0 * meta.nnz_per_row

    def test_caching_returns_same_object(self):
        a = suitesparse.load("dc2", scale=SCALE)
        b = suitesparse.load("dc2", scale=SCALE)
        assert a is b
        suitesparse.clear_cache()
        c = suitesparse.load("dc2", scale=SCALE)
        assert c is not a

    def test_deterministic_generation(self):
        suitesparse.clear_cache()
        a = suitesparse.load("cant", scale=SCALE, use_cache=False)
        b = suitesparse.load("cant", scale=SCALE, use_cache=False)
        assert a.nnz == b.nnz
        np.testing.assert_array_equal(a.col, b.col)

    def test_dc2_is_heavy_tailed(self):
        dc2 = suitesparse.load("dc2", scale=0.05)
        counts = dc2.row_nnz().astype(float)
        assert counts.std() > 2.0 * counts.mean()

    def test_conf5_is_block_banded(self):
        conf5 = suitesparse.load("conf5_4-8x8", scale=SCALE)
        # the lattice-QCD stand-in keeps all non-zeros near the diagonal
        assert conf5.bandwidth() <= 24

    def test_scale_changes_dimension(self):
        small = suitesparse.load("consph", scale=0.02)
        big = suitesparse.load("consph", scale=0.05)
        assert big.nrows > small.nrows

    def test_summary_table_structure(self):
        rows = suitesparse.summary_table(scale=SCALE)
        assert len(rows) == 9
        for row in rows:
            assert {"name", "domain", "paper_nnz", "standin_nnz"} <= set(row)
            # at tiny scales the constant per-row nnz makes the stand-in
            # denser than the full-size matrix; it must still be sparse
            assert row["standin_sparsity"] > 0.8
