"""Tests for the baseline kernels (cuSPARSE, DASP, Magicube, cuBLAS)."""

import numpy as np
import pytest

from repro.gpu import A100_SXM4_40GB
from repro.kernels import (
    CublasDenseKernel,
    CusparseCSRKernel,
    DASPKernel,
    KernelUnsupportedError,
    MagicubeKernel,
    SMaTKernel,
    available_kernels,
    get_kernel,
)
from repro.matrices import band_matrix, uniform_random

BASELINES = [CusparseCSRKernel, DASPKernel, MagicubeKernel, CublasDenseKernel]


@pytest.fixture
def A(rng):
    return uniform_random(640, 640, density=0.01, rng=rng)


@pytest.fixture
def B(A, rng):
    return rng.normal(size=(A.ncols, 8)).astype(np.float32)


class TestRegistry:
    def test_all_libraries_available(self):
        assert set(available_kernels()) == {"smat", "cusparse", "dasp", "magicube", "cublas"}

    def test_get_kernel(self):
        assert isinstance(get_kernel("smat"), SMaTKernel)
        assert isinstance(get_kernel("cusparse"), CusparseCSRKernel)
        with pytest.raises(ValueError):
            get_kernel("rocsparse")


class TestNumericalCorrectness:
    @pytest.mark.parametrize("cls", BASELINES)
    def test_matches_reference(self, cls, A, B):
        result = cls().multiply(A, B)
        np.testing.assert_allclose(result.C, A.spmm(B), rtol=1e-3, atol=1e-3)

    @pytest.mark.parametrize("cls", BASELINES)
    def test_spmv(self, cls, A, rng):
        x = rng.normal(size=(A.ncols, 1)).astype(np.float32)
        result = cls().multiply(A, x)
        np.testing.assert_allclose(result.C.ravel(), A.spmv(x.ravel()), rtol=1e-3, atol=1e-3)

    @pytest.mark.parametrize("cls", BASELINES)
    def test_positive_timing(self, cls, A, B):
        result = cls().multiply(A, B)
        assert result.time_ms > 0
        assert result.gflops > 0


class TestCuSPARSE:
    def test_row_imbalance_increases_time(self, rng):
        from repro.matrices import row_skewed_random

        n, nnz = 2048, 40_000
        balanced = uniform_random(n, n, nnz=nnz, rng=rng)
        skewed = row_skewed_random(n, n, nnz=nnz, alpha=2.0, rng=rng)
        B = rng.normal(size=(n, 8)).astype(np.float32)
        t_b = CusparseCSRKernel().multiply(balanced, B).time_ms
        t_s = CusparseCSRKernel().multiply(skewed, B).time_ms
        assert t_s > t_b * 0.9  # never meaningfully faster on the skewed input

    def test_time_grows_with_n(self, A, rng):
        B8 = rng.normal(size=(A.ncols, 8)).astype(np.float32)
        B64 = rng.normal(size=(A.ncols, 64)).astype(np.float32)
        t8 = CusparseCSRKernel().multiply(A, B8).time_ms
        t64 = CusparseCSRKernel().multiply(A, B64).time_ms
        assert t64 > t8


class TestDASP:
    def test_one_launch_per_column(self, A, rng):
        result = DASPKernel().multiply(A, rng.normal(size=(A.ncols, 8)).astype(np.float32))
        assert result.meta["launches"] == 8
        assert result.counters.extra["launches"] == 8

    def test_time_scales_with_columns(self, A, rng):
        k = DASPKernel()
        t1 = k.multiply(A, rng.normal(size=(A.ncols, 1)).astype(np.float32)).time_ms
        t16 = k.multiply(A, rng.normal(size=(A.ncols, 16)).astype(np.float32)).time_ms
        # batched SpMV: cost is ~linear in the number of columns
        assert 8.0 <= t16 / t1 <= 24.0

    def test_fastest_at_spmv(self, rng):
        """Figure 10: DASP remains the fastest library for N=1 (SpMV).
        Uses a cop20k_A-like stand-in, the matrix Figure 10 evaluates."""
        from repro.matrices import suitesparse

        A = suitesparse.load("cop20k_A", scale=0.1)
        x = rng.normal(size=(A.ncols, 1)).astype(np.float32)
        t_dasp = DASPKernel().multiply(A, x).time_ms
        t_smat = SMaTKernel().multiply(A, x).time_ms
        t_cusparse = CusparseCSRKernel().multiply(A, x).time_ms
        assert t_dasp <= t_smat
        assert t_dasp <= t_cusparse


class TestMagicube:
    def test_vector_format_metadata(self, A, B):
        result = MagicubeKernel().multiply(A, B)
        assert result.meta["format"] == "sr-bcrs"
        assert result.meta["n_vectors"] > 0

    def test_out_of_memory_for_huge_matrices(self):
        """Section V-D: Magicube's preprocessing runs out of memory for large
        matrices.  A matrix whose SR-BCRS expansion exceeds 40 GiB must be
        rejected."""
        kernel = MagicubeKernel()
        # ~40k x 40k with ~0.5% density scattered entries: ~8M nnz ->
        # ~8M vectors * 8 * 2 bytes * expansion factor > 40 GiB is not quite
        # reachable cheaply, so shrink the simulated device instead.
        small_gpu = A100_SXM4_40GB.with_overrides(hbm_capacity_gib=0.001)
        kernel_small = MagicubeKernel(small_gpu)
        A = uniform_random(2048, 2048, density=0.01, rng=np.random.default_rng(0))
        with pytest.raises(KernelUnsupportedError, match="GiB"):
            kernel_small.prepare(A)
        # the normal device accepts it
        kernel.prepare(A)

    def test_padding_vectors_tracked(self, A, B):
        result = MagicubeKernel().multiply(A, B)
        assert result.counters.extra["n_padding_vectors"] >= 0


class TestCuBLAS:
    def test_effective_vs_dense_gflops(self, A, B):
        result = CublasDenseKernel().multiply(A, B)
        # dense GFLOP/s (all M*K*N work) must exceed the effective GFLOP/s
        # (useful work only) for a sparse matrix
        assert result.meta["dense_gflops"] > result.gflops
        assert result.meta["effective_fraction"] == pytest.approx(
            A.nnz / (A.nrows * A.ncols), rel=1e-6
        )

    def test_rejects_matrices_larger_than_device_memory(self):
        small_gpu = A100_SXM4_40GB.with_overrides(hbm_capacity_gib=0.0001)
        kernel = CublasDenseKernel(small_gpu)
        A = uniform_random(1024, 1024, density=0.01, rng=np.random.default_rng(0))
        with pytest.raises(KernelUnsupportedError):
            kernel.prepare(A)

    def test_dense_gemm_near_memory_or_compute_bound(self, rng):
        A = band_matrix(2048, 2047, rng=rng)  # fully dense
        B = rng.normal(size=(2048, 8)).astype(np.float32)
        result = CublasDenseKernel().multiply(A, B)
        assert result.timing.bound in ("memory", "compute")

    def test_time_insensitive_to_sparsity(self, rng):
        """cuBLAS processes explicit zeros: its runtime depends only on the
        dimensions, so sparse and dense inputs of the same size cost the
        same (this is the padding waste the paper quantifies)."""
        n = 1024
        sparse = uniform_random(n, n, density=0.001, rng=rng)
        dense = band_matrix(n, n - 1, rng=rng)
        B = rng.normal(size=(n, 8)).astype(np.float32)
        t_sparse = CublasDenseKernel().multiply(sparse, B).time_ms
        t_dense = CublasDenseKernel().multiply(dense, B).time_ms
        assert t_sparse == pytest.approx(t_dense, rel=0.05)
