"""Tests for the command-line interface."""

import pytest

from repro.cli import build_parser, main


class TestParser:
    def test_requires_subcommand(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_compare_defaults(self):
        args = build_parser().parse_args(["compare"])
        assert args.matrix == "cop20k_A"
        assert args.n == 8

    def test_band_arguments(self):
        args = build_parser().parse_args(["band", "--size", "1024", "--n", "16"])
        assert args.size == 1024
        assert args.n == 16

    def test_engine_defaults(self):
        args = build_parser().parse_args(["engine"])
        assert args.matrix == "cant"
        assert args.batch == 16
        assert args.workers == 4
        assert args.cache_size == 8


class TestCommands:
    def test_matrices_listing(self, capsys):
        assert main(["matrices"]) == 0
        out = capsys.readouterr().out
        assert "cop20k_A" in out and "dc2" in out
        assert "Table I" in out

    def test_compare_command(self, capsys):
        code = main([
            "compare", "--matrix", "dc2", "--scale", "0.03", "--n", "4",
            "--libraries", "smat,cusparse",
        ])
        assert code == 0
        out = capsys.readouterr().out
        assert "SMaT" in out and "cuSPARSE" in out
        assert "GFLOP/s" in out

    def test_reorder_command(self, capsys):
        code = main([
            "reorder", "--matrix", "cop20k_A", "--scale", "0.03",
            "--algorithms", "jaccard,graycode",
        ])
        assert code == 0
        out = capsys.readouterr().out
        assert "jaccard" in out and "graycode" in out
        assert "reduction" in out

    def test_engine_command(self, capsys):
        code = main([
            "engine", "--matrix", "dc2", "--scale", "0.03", "--n", "4",
            "--batch", "4", "--workers", "2", "--cache-size", "2",
        ])
        assert code == 0
        out = capsys.readouterr().out
        assert "cold" in out and "warm" in out
        assert "cache_hits" in out
        assert "speedup" in out

    def test_band_command(self, capsys):
        code = main(["band", "--size", "512", "--n", "4"])
        assert code == 0
        out = capsys.readouterr().out
        assert "cuBLAS" in out and "SMaT" in out
