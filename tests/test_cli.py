"""Tests for the command-line interface."""

import pytest

from repro.cli import build_parser, main


class TestParser:
    def test_requires_subcommand(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_compare_defaults(self):
        args = build_parser().parse_args(["compare"])
        assert args.matrix == "cop20k_A"
        assert args.n == 8

    def test_band_arguments(self):
        args = build_parser().parse_args(["band", "--size", "1024", "--n", "16"])
        assert args.size == 1024
        assert args.n == 16

    def test_engine_defaults(self):
        args = build_parser().parse_args(["engine"])
        assert args.matrix == "cant"
        assert args.batch == 16
        assert args.workers == 4
        assert args.cache_size == 8
        assert args.tune is False

    def test_tune_defaults(self):
        args = build_parser().parse_args(["tune"])
        assert args.matrix == "cant"
        assert args.scale == 0.1
        assert args.budget == 8
        assert args.no_cache is False
        assert args.cache is None

    def test_shard_defaults(self):
        args = build_parser().parse_args(["shard"])
        assert args.matrix == "cant"
        assert args.grid == "4"
        assert args.mode == "nnz"
        assert args.workers == 4
        assert args.tune is False

    def test_shard_grid_argument(self):
        args = build_parser().parse_args(["shard", "--grid", "2x2", "--mode", "cost"])
        assert args.grid == "2x2"
        assert args.mode == "cost"

    def test_workload_defaults(self):
        args = build_parser().parse_args(["workload"])
        assert args.workload == "pagerank"
        assert args.matrix == "cant"
        assert args.iters == 30
        assert args.tol == 1e-6
        assert args.sharded is False
        assert args.tune is False

    def test_workload_arguments(self):
        args = build_parser().parse_args(
            ["workload", "--workload", "gcn", "--sharded", "--grid", "2x2", "--iters", "4"]
        )
        assert args.workload == "gcn"
        assert args.sharded is True
        assert args.grid == "2x2"
        assert args.iters == 4

    def test_serve_defaults(self):
        args = build_parser().parse_args(["serve"])
        assert args.host == "127.0.0.1"
        assert args.port == 8942
        assert args.workers == 4
        assert args.cache_size == 32
        assert args.kernel == "smat"
        assert args.token == []
        assert args.max_inflight is None
        assert args.max_queue == 16
        assert args.max_body_mb == 64
        assert args.registry_capacity == 256
        assert args.quiet is False

    def test_serve_token_arguments_accumulate(self):
        args = build_parser().parse_args(
            ["serve", "--port", "0", "--token", "alice=sekret", "--token", "bob:4:9=hunter2"]
        )
        assert args.port == 0
        assert args.token == ["alice=sekret", "bob:4:9=hunter2"]


class TestArgumentValidation:
    """Bad arguments exit with argparse's code 2 and a clean message,
    not a traceback."""

    @pytest.mark.parametrize(
        "argv",
        [
            ["engine", "--scale", "0"],
            ["engine", "--scale", "1.5"],
            ["engine", "--scale", "nope"],
            ["engine", "--batch", "0"],
            ["engine", "--workers", "0"],
            ["engine", "--workers", "-2"],
            ["engine", "--cache-size", "0"],
            ["engine", "--n", "0"],
            ["tune", "--scale", "2"],
            ["tune", "--budget", "0"],
            ["tune", "--repeats", "0"],
            ["compare", "--scale", "-0.1"],
            ["compare", "--n", "0"],
            ["band", "--size", "0"],
            ["reorder", "--scale", "0"],
            ["shard", "--scale", "0"],
            ["shard", "--workers", "0"],
            ["shard", "--grid", "0x2"],
            ["shard", "--grid", "2x2x2"],
            ["shard", "--n", "0"],
            ["shard", "--mode", "banana"],
            ["workload", "--workload", "banana"],
            ["workload", "--damping", "1.5"],
            ["workload", "--damping", "0"],
            ["workload", "--damping", "nope"],
            ["workload", "--scale", "0"],
            ["workload", "--iters", "0"],
            ["workload", "--grid", "0x1"],
            ["workload", "--workers", "0"],
            ["engine", "--executor", "banana"],
            ["shard", "--executor", "fiber"],
            ["workload", "--executor", "coroutine"],
            ["serve", "--executor", "banana"],
        ],
    )
    def test_bad_arguments_exit_code_2(self, argv, capsys):
        with pytest.raises(SystemExit) as excinfo:
            main(argv)
        assert excinfo.value.code == 2
        err = capsys.readouterr().err
        assert "error:" in err
        assert "Traceback" not in err

    def test_unknown_subcommand_exits_2(self, capsys):
        with pytest.raises(SystemExit) as excinfo:
            main(["frobnicate"])
        assert excinfo.value.code == 2


class TestSharedExecutionFlags:
    """The --executor flag and the args -> ExecutionPolicy mapping come
    from one shared module (repro.cli_args), wired through every
    subcommand."""

    @pytest.mark.parametrize("cmd", ["engine", "shard", "workload", "serve"])
    def test_executor_flag_everywhere(self, cmd):
        assert build_parser().parse_args([cmd]).executor is None
        args = build_parser().parse_args([cmd, "--executor", "process"])
        assert args.executor == "process"

    def test_policy_from_args_maps_fields(self):
        from repro.cli_args import policy_from_args

        args = build_parser().parse_args(
            ["shard", "--executor", "process", "--workers", "3",
             "--grid", "2x2", "--mode", "cost"]
        )
        policy = policy_from_args(args)
        assert policy.executor == "process"
        assert policy.max_workers == 3
        assert policy.grid == "2x2"
        assert policy.shard_mode == "cost"

    def test_policy_from_args_overrides_win(self):
        from repro.cli_args import policy_from_args

        args = build_parser().parse_args(["engine", "--workers", "3"])
        policy = policy_from_args(args, max_workers=1)
        assert policy.max_workers == 1

    def test_absent_flags_keep_policy_defaults(self):
        from repro.cli_args import policy_from_args
        from repro.core.policy import ExecutionPolicy

        args = build_parser().parse_args(["compare"])
        assert policy_from_args(args) == ExecutionPolicy(tune=False)


class TestCommands:
    def test_matrices_listing(self, capsys):
        assert main(["matrices"]) == 0
        out = capsys.readouterr().out
        assert "cop20k_A" in out and "dc2" in out
        assert "Table I" in out

    def test_compare_command(self, capsys):
        code = main([
            "compare", "--matrix", "dc2", "--scale", "0.03", "--n", "4",
            "--libraries", "smat,cusparse",
        ])
        assert code == 0
        out = capsys.readouterr().out
        assert "SMaT" in out and "cuSPARSE" in out
        assert "GFLOP/s" in out

    def test_reorder_command(self, capsys):
        code = main([
            "reorder", "--matrix", "cop20k_A", "--scale", "0.03",
            "--algorithms", "jaccard,graycode",
        ])
        assert code == 0
        out = capsys.readouterr().out
        assert "jaccard" in out and "graycode" in out
        assert "reduction" in out

    def test_engine_command(self, capsys):
        code = main([
            "engine", "--matrix", "dc2", "--scale", "0.03", "--n", "4",
            "--batch", "4", "--workers", "2", "--cache-size", "2",
        ])
        assert code == 0
        out = capsys.readouterr().out
        assert "cold" in out and "warm" in out
        assert "cache_hits" in out
        assert "speedup" in out

    def test_band_command(self, capsys):
        code = main(["band", "--size", "512", "--n", "4"])
        assert code == 0
        out = capsys.readouterr().out
        assert "cuBLAS" in out and "SMaT" in out

    def test_tune_command_no_cache(self, capsys):
        code = main([
            "tune", "--matrix", "dc2", "--scale", "0.03", "--n", "4",
            "--budget", "3", "--reorderers", "identity,jaccard", "--no-cache",
        ])
        assert code == 0
        out = capsys.readouterr().out
        assert "auto-tuning dc2" in out
        assert "winner:" in out
        assert "pruned" in out
        assert "persisted" not in out  # --no-cache skips persistence

    def test_tune_command_persists_cache(self, capsys, tmp_path):
        cache = tmp_path / "tune.json"
        code = main([
            "tune", "--matrix", "dc2", "--scale", "0.03", "--n", "4",
            "--budget", "3", "--reorderers", "identity,jaccard",
            "--cache", str(cache),
        ])
        assert code == 0
        assert "entries: 1" in capsys.readouterr().out
        assert cache.exists()

    def test_shard_command_prints_table_and_imbalance(self, capsys):
        code = main([
            "shard", "--matrix", "cant", "--scale", "0.1", "--grid", "2x2",
            "--workers", "2",
        ])
        assert code == 0
        out = capsys.readouterr().out
        assert "sharded SpMM on cant" in out
        assert "grid 2x2" in out
        # the per-shard table and its headline metric
        assert "config" in out and "16x8/" in out
        assert "nnz imbalance factor:" in out
        # acceptance criterion: nnz-balanced 2x2 on cant stays <= 1.25
        imbalance = float(out.split("nnz imbalance factor:", 1)[1].strip().split()[0])
        assert imbalance <= 1.25
        assert "single-plan" in out

    def test_shard_command_bad_grid_exits_2(self, capsys):
        with pytest.raises(SystemExit) as excinfo:
            main(["shard", "--matrix", "dc2", "--scale", "0.03", "--grid", "axb"])
        assert excinfo.value.code == 2
        assert "error:" in capsys.readouterr().err

    def test_shard_command_cost_mode(self, capsys):
        code = main([
            "shard", "--matrix", "dc2", "--scale", "0.03", "--grid", "2",
            "--mode", "cost", "--workers", "1", "--n", "4",
        ])
        assert code == 0
        assert "mode=cost" in capsys.readouterr().out

    def test_workload_pagerank_prints_convergence_and_amortization(self, capsys):
        code = main([
            "workload", "--matrix", "cant", "--scale", "0.1",
            "--workload", "pagerank", "--workers", "2",
        ])
        assert code == 0
        out = capsys.readouterr().out
        assert "pagerank on cant" in out
        assert "residual" in out and "spmm_ms" in out
        assert "converged:" in out
        # acceptance criterion: the plan-amortization ratio is > 1
        ratio = float(
            out.split("plan amortization ratio (cold/warm):", 1)[1].strip().split("x")[0]
        )
        assert ratio > 1.0

    def test_workload_gcn_sharded(self, capsys):
        code = main([
            "workload", "--matrix", "dc2", "--scale", "0.03", "--workload", "gcn",
            "--iters", "3", "--n", "4", "--sharded", "--grid", "2", "--workers", "1",
        ])
        assert code == 0
        out = capsys.readouterr().out
        assert "gcn on dc2" in out and "sharded" in out

    def test_workload_power_prints_eigenvalue(self, capsys):
        code = main([
            "workload", "--matrix", "dc2", "--scale", "0.03",
            "--workload", "power", "--iters", "5", "--workers", "1",
        ])
        assert code == 0
        assert "dominant eigenvalue estimate:" in capsys.readouterr().out

    def test_workload_smoothers_run_on_spd_surrogate(self, capsys):
        for name in ("jacobi", "chebyshev"):
            code = main([
                "workload", "--matrix", "dc2", "--scale", "0.03",
                "--workload", name, "--iters", "5", "--n", "2", "--workers", "1",
            ])
            assert code == 0
            assert f"{name} on dc2" in capsys.readouterr().out

    def test_engine_command_tuned(self, capsys, tmp_path, monkeypatch):
        monkeypatch.setenv("REPRO_TUNING_CACHE", str(tmp_path / "t.json"))
        code = main([
            "engine", "--matrix", "dc2", "--scale", "0.03", "--n", "4",
            "--batch", "2", "--workers", "1", "--tune",
        ])
        assert code == 0
        assert "speedup" in capsys.readouterr().out

    def test_kernels_listing(self, capsys):
        assert main(["kernels"]) == 0
        out = capsys.readouterr().out
        assert "smat" in out and "cublas" in out
        assert "bcsr" in out and "dense" in out
        assert "cost_model" in out

    def test_compare_engine_flag_reports_warm_pass(self, capsys):
        code = main([
            "compare", "--matrix", "dc2", "--scale", "0.03", "--n", "4",
            "--libraries", "smat,cusparse", "--engine",
        ])
        assert code == 0
        out = capsys.readouterr().out
        assert "cold_wall_ms" in out and "warm_wall_ms" in out
        assert "served from the plan cache" in out
        assert "backend" in out

    def test_compare_tune_flag_adds_auto_row(self, capsys, tmp_path, monkeypatch):
        monkeypatch.setenv("REPRO_TUNING_CACHE", str(tmp_path / "t.json"))
        code = main([
            "compare", "--matrix", "dc2", "--scale", "0.03", "--n", "4",
            "--libraries", "smat", "--tune",
        ])
        assert code == 0
        out = capsys.readouterr().out
        assert "auto(" in out

    def test_tune_command_kernel_auto(self, capsys):
        code = main([
            "tune", "--matrix", "dc2", "--scale", "0.03", "--n", "4",
            "--budget", "3", "--reorderers", "identity,jaccard",
            "--kernel", "auto", "--no-cache",
        ])
        assert code == 0
        out = capsys.readouterr().out
        assert "winner:" in out
        assert "cublas" in out or "cusparse" in out  # backend rows in the table

    def test_workload_kernel_flag(self, capsys):
        code = main([
            "workload", "--workload", "pagerank", "--matrix", "dc2",
            "--scale", "0.03", "--iters", "5", "--kernel", "cusparse",
        ])
        assert code == 0
        out = capsys.readouterr().out
        assert "pagerank" in out and "amortization" in out

    def test_workload_bad_kernel_exits_2(self, capsys):
        with pytest.raises(SystemExit) as excinfo:
            main(["workload", "--kernel", "tensorrt"])
        assert excinfo.value.code == 2
        assert "invalid choice" in capsys.readouterr().err


class TestTraceCommand:
    def test_trace_parser_defaults(self):
        args = build_parser().parse_args(["trace"])
        assert args.matrix == "cant"
        assert args.workload == "pagerank"
        assert args.out == "trace.json"
        assert args.sample_rate == 1.0

    def test_trace_flag_registered_on_engine_and_workload(self):
        args = build_parser().parse_args(["engine", "--trace", "t.json"])
        assert args.trace == "t.json"
        args = build_parser().parse_args(["workload", "--trace", "t.json"])
        assert args.trace == "t.json"

    def test_trace_command_writes_valid_chrome_trace(self, capsys, tmp_path):
        import json

        from repro.obs import validate_chrome_trace

        out = tmp_path / "trace.json"
        code = main([
            "trace", "--matrix", "cant", "--scale", "0.05",
            "--workload", "pagerank", "--iters", "3", "--out", str(out),
        ])
        assert code == 0
        printed = capsys.readouterr().out
        # the ASCII span tree and the run's tables share stdout
        assert "repro.trace" in printed
        assert "engine.multiply" in printed
        assert "plan.lookup" in printed
        assert f"-> {out}" in printed
        doc = json.loads(out.read_text())
        n_events = validate_chrome_trace(doc)
        assert n_events >= 5

    def test_workload_trace_flag_writes_file(self, capsys, tmp_path):
        import json

        from repro.obs import validate_chrome_trace

        out = tmp_path / "wl.json"
        code = main([
            "workload", "--matrix", "cant", "--scale", "0.05",
            "--workload", "pagerank", "--iters", "3", "--trace", str(out),
        ])
        assert code == 0
        printed = capsys.readouterr().out
        # --trace stays quiet (no span tree), just the summary line
        assert "repro.trace" not in printed.split("amortization")[1]
        assert validate_chrome_trace(json.loads(out.read_text())) >= 5

    def test_engine_trace_flag_writes_file(self, capsys, tmp_path):
        import json

        from repro.obs import validate_chrome_trace

        out = tmp_path / "engine.json"
        code = main([
            "engine", "--matrix", "cant", "--scale", "0.05", "--batch", "2",
            "--workers", "1", "--trace", str(out),
        ])
        assert code == 0
        assert "trace:" in capsys.readouterr().out
        doc = json.loads(out.read_text())
        assert validate_chrome_trace(doc) >= 2
        names = {e["name"] for e in doc["traceEvents"] if e["ph"] == "X"}
        assert "engine.execute" in names
