"""The shard-executor seam: process pool parity, placement, leaks, telemetry.

The thread executor's behaviour is pinned by ``test_shard_execution``;
this module covers what is new at the seam: the shared-memory process
pool must produce bit-compatible results on the Table-I stand-ins, keep
its plans warm inside sticky worker sessions, warm those workers from
the persistent tuning cache, clean up every shared-memory segment on
any exit path (normal close, worker crash, KeyboardInterrupt), and
report its counters through engine telemetry and the serving
``/metrics`` document.
"""

import json
import os
import signal

import numpy as np
import pytest

from repro import SMaT, SMaTConfig, ShardedSpMM
from repro.core.policy import ExecutionPolicy
from repro.engine import SpMMEngine
from repro.engine.executors import (
    Placement,
    ProcessShardExecutor,
    ThreadShardExecutor,
    leaked_segments,
    make_shard_executor,
    place_shards,
)
from repro.matrices import suitesparse
from repro.serve import SpMMClient, SpMMServer

PROCESS = ExecutionPolicy(executor="process", max_workers=2)
THREAD = ExecutionPolicy(executor="thread", max_workers=2)


def _operand(A, n=8, seed=0):
    rng = np.random.default_rng(seed)
    return rng.normal(size=(A.ncols, n)).astype(np.float32)


class TestProcessParityOnTableI:
    """Acceptance: the process pool's C equals unsharded SMaT.multiply on
    all nine Table-I stand-ins, for 1D and 2D partitions."""

    @pytest.mark.parametrize("name", suitesparse.TABLE1_NAMES)
    @pytest.mark.parametrize("grid", ["4", "2x2"])
    def test_matches_single_plan(self, name, grid):
        A = suitesparse.load(name, scale=0.04)
        B = _operand(A)
        reference = SMaT(A, SMaTConfig()).multiply(B)
        with ShardedSpMM(A, grid, policy=PROCESS) as sharded:
            C = sharded.multiply(B)
        np.testing.assert_allclose(C, reference, rtol=1e-3, atol=1e-3)


class TestProcessExecution:
    def test_vector_operand_spmv(self, medium_random):
        x = _operand(medium_random, n=1).ravel()
        with ShardedSpMM(medium_random, 3, policy=PROCESS) as sharded:
            y = sharded.multiply(x)
        assert y.ndim == 1
        np.testing.assert_allclose(
            y, medium_random.spmm(x[:, None]).ravel(), rtol=1e-3, atol=1e-3
        )

    def test_repeated_multiplies_are_stable(self, medium_random):
        B = _operand(medium_random)
        with ShardedSpMM(medium_random, "2x2", policy=PROCESS) as sharded:
            C1 = sharded.multiply(B)
            C2 = sharded.multiply(B)
        np.testing.assert_array_equal(C1, C2)

    def test_warm_session_reuses_worker_plans(self, medium_random):
        with SpMMEngine(policy=PROCESS, cache_size=32) as engine:
            partition = engine.partition_for(medium_random, 2)
            cold = engine.shard_plans_for(partition, engine.config)
            assert not any(e.cache_hit for e in cold if e.shard.nnz > 0)
            warm = engine.shard_plans_for(partition, engine.config)
            assert all(e.cache_hit for e in warm)
            assert engine.telemetry().executor.sessions == 1

    def test_shard_plans_stay_in_workers_not_host_cache(self, medium_random):
        """The process executor builds plans inside the workers; the
        host plan cache holds only the partition entry.  The thread
        executor shares the host cache (plans visible in keys())."""
        with ShardedSpMM(medium_random, 2, policy=PROCESS) as sharded:
            keys = sharded.engine.plan_cache.keys()
            assert all(k[0] == "shard-partition" for k in keys)
        with ShardedSpMM(medium_random, 2, policy=THREAD) as sharded:
            keys = sharded.engine.plan_cache.keys()
            assert any(k[0] != "shard-partition" for k in keys)

    def test_report_matches_thread_report_shape(self, medium_random):
        B = _operand(medium_random)
        with ShardedSpMM(medium_random, "2x2", policy=PROCESS) as sharded:
            _, report = sharded.multiply(B, return_report=True)
        assert report.n_shards == 4
        assert report.grid == (2, 2)
        assert report.nnz == medium_random.nnz
        rows = report.table()
        assert {"shard", "rows", "cols", "nnz", "backend", "config"} <= set(rows[0])
        assert all(r["backend"] != "-" for r in rows)

    def test_env_default_selects_process_executor(self, medium_random, monkeypatch):
        monkeypatch.setenv("REPRO_EXECUTOR", "process")
        with SpMMEngine(policy=ExecutionPolicy(max_workers=2)) as engine:
            assert isinstance(engine.shard_executor, ProcessShardExecutor)
        monkeypatch.setenv("REPRO_EXECUTOR", "thread")
        with SpMMEngine(policy=ExecutionPolicy(max_workers=2)) as engine:
            assert isinstance(engine.shard_executor, ThreadShardExecutor)


class TestTuningWarmup:
    def test_workers_warm_plan_caches_from_tuning_cache(self, medium_random, tmp_path):
        cache_path = tmp_path / "tuning.json"
        B = _operand(medium_random)
        # populate the persistent cache: per-shard tuning on the thread pool
        with ShardedSpMM(
            medium_random, 2, policy=THREAD, tuning_cache=cache_path
        ) as sharded:
            C_thread = sharded.multiply(B)
        assert cache_path.exists()
        # a fresh process pool warms its workers from the same cache: the
        # tuning searches must be disk hits, not re-runs
        with ShardedSpMM(
            medium_random, 2, policy=PROCESS, tuning_cache=cache_path
        ) as sharded:
            C_process = sharded.multiply(B)
            executor = sharded.engine.telemetry().executor
        np.testing.assert_allclose(C_process, C_thread, rtol=1e-3, atol=1e-3)
        assert executor.warmup_hits >= 2  # one per non-empty shard


class TestLeakHygiene:
    def test_normal_close_leaves_no_segments(self, medium_random):
        B = _operand(medium_random)
        with ShardedSpMM(medium_random, 4, policy=PROCESS) as sharded:
            sharded.multiply(B)
            assert sharded.engine.telemetry().executor.segment_bytes > 0
        assert leaked_segments() == []

    def test_worker_crash_raises_and_leaves_no_segments(self, medium_random):
        B = _operand(medium_random)
        with ShardedSpMM(medium_random, 4, policy=PROCESS) as sharded:
            sharded.multiply(B)
            executor = sharded.engine.shard_executor
            victim, _ = executor._workers[0]
            os.kill(victim.pid, signal.SIGKILL)
            victim.join(5.0)
            with pytest.raises(RuntimeError, match="died unexpectedly"):
                sharded.multiply(B)
            # the executor is broken from here on, not hanging
            with pytest.raises(RuntimeError, match="broken"):
                sharded.multiply(B)
        assert leaked_segments() == []

    def test_keyboard_interrupt_leaves_no_segments(self, medium_random):
        B = _operand(medium_random)
        with pytest.raises(KeyboardInterrupt):
            with ShardedSpMM(medium_random, 2, policy=PROCESS) as sharded:
                sharded.multiply(B)
                raise KeyboardInterrupt
        assert leaked_segments() == []

    def test_close_is_idempotent(self, medium_random):
        sharded = ShardedSpMM(medium_random, 2, policy=PROCESS)
        sharded.close()
        sharded.close()
        assert leaked_segments() == []


class TestPlacement:
    def test_lpt_is_deterministic(self):
        costs = [5.0, 3.0, 3.0, 2.0, 1.0]
        first = place_shards(costs, 2)
        second = place_shards(costs, 2)
        assert first.assignment == second.assignment == [0, 1, 1, 0, 1]
        assert first.loads == [7.0, 7.0]
        assert first.imbalance == pytest.approx(1.0)

    def test_imbalance_counts_idle_workers(self):
        placement = Placement(assignment=[0], loads=[4.0, 0.0], costs=[4.0])
        assert placement.imbalance == pytest.approx(2.0)

    def test_imbalance_of_empty_placement_is_one(self):
        assert place_shards([], 4).imbalance == 1.0

    def test_rejects_zero_workers(self):
        with pytest.raises(ValueError, match="n_workers"):
            place_shards([1.0], 0)


class TestFactory:
    def test_unknown_kind_raises(self):
        with pytest.raises(ValueError, match="unknown executor kind"):
            make_shard_executor("fiber", cache=None)

    def test_process_rejects_zero_workers(self):
        with pytest.raises(ValueError, match="max_workers"):
            ProcessShardExecutor(0)

    def test_closed_executor_refuses_work(self, medium_random):
        with SpMMEngine(policy=PROCESS, cache_size=32) as engine:
            partition = engine.partition_for(medium_random, 2)
            executor = engine.shard_executor
        with pytest.raises(RuntimeError, match="closed"):
            executor.prepare(partition, engine.config)


class TestTelemetry:
    def test_counter_deltas_across_multiplies(self, medium_random):
        B = _operand(medium_random)
        with ShardedSpMM(medium_random, 4, policy=PROCESS) as sharded:
            t0 = sharded.engine.telemetry().executor
            assert t0.kind == "process" and t0.workers == 2
            assert t0.sessions == 1 and t0.shards_executed == 0
            sharded.multiply(B)
            t1 = sharded.engine.telemetry().executor
            assert t1.shards_executed == 4
            sharded.multiply(B)
            t2 = sharded.engine.telemetry().executor
            assert t2.shards_executed == 8
            assert sum(t2.per_worker_shards.values()) == t2.shards_executed
            assert set(t2.per_worker_shards) <= {0, 1}
            assert t2.placement_imbalance >= 1.0
            assert t2.segment_bytes > 0

    def test_stub_before_first_sharded_call(self):
        with SpMMEngine(policy=ExecutionPolicy(executor="process")) as engine:
            executor = engine.telemetry().executor
            assert executor.kind == "process"
            assert executor.sessions == executor.shards_executed == 0

    def test_metrics_document_exposes_executor_section(self):
        with SpMMServer(policy=ExecutionPolicy(executor="process", max_workers=2)) as server:
            doc = SpMMClient(server.url).metrics()
        json.dumps(doc)  # the whole document must stay JSON-serializable
        executor = doc["engine"]["executor"]
        assert executor["kind"] == "process"
        assert executor["workers"] == 2
        assert {
            "sessions",
            "shards_executed",
            "per_worker_shards",
            "placement_imbalance",
            "segment_bytes",
            "warmup_hits",
        } <= set(executor)
