"""Property-based tests on the reordering layer.

Invariants:

* every algorithm always returns a valid permutation,
* applying a permutation never changes nnz or the multiset of row lengths,
* the block count after any permutation stays within Eq. 2's bounds,
* the SMaT pipeline's result is permutation-independent (the same product
  regardless of which reorderer ran).
"""

import numpy as np
from hypothesis import given, settings, strategies as st

from repro import SMaT, SMaTConfig
from repro.core import block_count_bounds
from repro.matrices import uniform_random
from repro.reorder import count_blocks, get_reorderer

ALGORITHMS = ["identity", "jaccard", "saad", "rcm", "graycode", "hypergraph"]

matrix_params = st.tuples(
    st.integers(min_value=16, max_value=160),    # n (square)
    st.floats(min_value=0.0, max_value=0.15),    # density
    st.integers(min_value=0, max_value=2**31 - 1),
)


@given(params=matrix_params, algorithm=st.sampled_from(ALGORITHMS))
@settings(max_examples=40, deadline=None)
def test_reorderers_return_valid_permutations(params, algorithm):
    n, density, seed = params
    A = uniform_random(n, n, density=density, rng=np.random.default_rng(seed))
    result = get_reorderer(algorithm, block_shape=(16, 8)).reorder(A, with_stats=False)
    assert np.array_equal(np.sort(result.row_perm), np.arange(n))


@given(params=matrix_params, algorithm=st.sampled_from(ALGORITHMS))
@settings(max_examples=40, deadline=None)
def test_permuted_matrix_preserves_structure(params, algorithm):
    n, density, seed = params
    A = uniform_random(n, n, density=density, rng=np.random.default_rng(seed))
    result = get_reorderer(algorithm, block_shape=(16, 8)).reorder(A, with_stats=False)
    permuted = result.apply(A)
    assert permuted.nnz == A.nnz
    np.testing.assert_array_equal(np.sort(permuted.row_nnz()), np.sort(A.row_nnz()))


@given(params=matrix_params, algorithm=st.sampled_from(ALGORITHMS))
@settings(max_examples=40, deadline=None)
def test_block_count_respects_eq2_under_any_permutation(params, algorithm):
    n, density, seed = params
    A = uniform_random(n, n, density=density, rng=np.random.default_rng(seed))
    result = get_reorderer(algorithm, block_shape=(16, 8)).reorder(A, with_stats=False)
    blocks = count_blocks(A, (16, 8), row_perm=result.row_perm)
    lower, upper = block_count_bounds(A.nnz, n, n, (16, 8))
    assert lower <= blocks <= upper


@given(
    n=st.integers(min_value=32, max_value=96),
    density=st.floats(min_value=0.01, max_value=0.1),
    seed=st.integers(0, 2**16),
    algorithm=st.sampled_from(["jaccard", "graycode", "identity"]),
    n_cols=st.integers(min_value=1, max_value=9),
)
@settings(max_examples=25, deadline=None)
def test_pipeline_result_is_permutation_independent(n, density, seed, algorithm, n_cols):
    rng = np.random.default_rng(seed)
    A = uniform_random(n, n, density=density, rng=rng)
    B = rng.normal(size=(n, n_cols)).astype(np.float32)
    reference = A.spmm(B)
    smat = SMaT(A, SMaTConfig(reorder=algorithm))
    np.testing.assert_allclose(smat.multiply(B), reference, rtol=1e-3, atol=1e-3)
