"""Tests for the simulated SMaT kernel (variants, counters, timing)."""

import numpy as np
import pytest

from repro.kernels import SMaTKernel, SMaTVariant
from repro.matrices import band_matrix, block_random, row_skewed_random, uniform_random


@pytest.fixture
def A_band():
    return band_matrix(512, 32, rng=np.random.default_rng(0))


@pytest.fixture
def B8(A_band, rng):
    return rng.normal(size=(A_band.ncols, 8)).astype(np.float32)


class TestVariantParsing:
    def test_naive(self):
        v = SMaTVariant.from_string("naive")
        assert not (v.use_bcsr_pointers or v.use_tensor_cores or v.use_async_copy)
        assert v.label == "naive"

    @pytest.mark.parametrize("spec,flags", [
        ("B", (True, False, False)),
        ("T", (False, True, False)),
        ("BT", (True, True, False)),
        ("CBT", (True, True, True)),
        ("tbc", (True, True, True)),
    ])
    def test_letters(self, spec, flags):
        v = SMaTVariant.from_string(spec)
        assert (v.use_bcsr_pointers, v.use_tensor_cores, v.use_async_copy) == flags

    def test_invalid_letters(self):
        with pytest.raises(ValueError):
            SMaTVariant.from_string("XY")

    def test_label_roundtrip(self):
        assert SMaTVariant.from_string("CBT").label == "CBT"
        assert SMaTVariant.from_string("T").label == "T"


class TestNumericalCorrectness:
    def test_matches_reference(self, A_band, B8):
        kernel = SMaTKernel()
        result = kernel.multiply(A_band, B8)
        np.testing.assert_allclose(result.C, A_band.spmm(B8), rtol=1e-3, atol=1e-3)

    @pytest.mark.parametrize("variant", ["naive", "B", "T", "BT", "CBT"])
    def test_all_variants_produce_same_numbers(self, A_band, B8, variant):
        result = SMaTKernel(variant=variant).multiply(A_band, B8)
        np.testing.assert_allclose(result.C, A_band.spmm(B8), rtol=1e-3, atol=1e-3)

    def test_requires_prepare_before_run(self, B8):
        kernel = SMaTKernel()
        with pytest.raises(RuntimeError, match="prepare"):
            kernel.run(B8)

    def test_dimension_mismatch_rejected(self, A_band):
        kernel = SMaTKernel()
        kernel.prepare(A_band)
        with pytest.raises(ValueError):
            kernel.run(np.zeros((A_band.ncols + 3, 8), dtype=np.float32))

    def test_spmv_shape(self, A_band, rng):
        kernel = SMaTKernel()
        x = rng.normal(size=(A_band.ncols, 1)).astype(np.float32)
        result = kernel.multiply(A_band, x)
        assert result.C.shape == (A_band.nrows, 1)


class TestCountersAndTiming:
    def test_block_count_in_counters(self, A_band, B8):
        result = SMaTKernel().multiply(A_band, B8)
        from repro.formats import BCSRMatrix

        expected = BCSRMatrix.from_csr(A_band, (16, 8)).n_blocks
        assert result.counters.extra["n_blocks"] == expected

    def test_useful_flops(self, A_band, B8):
        result = SMaTKernel().multiply(A_band, B8)
        assert result.counters.useful_flops == pytest.approx(2.0 * A_band.nnz * 8)

    def test_gflops_positive_and_below_peak(self, A_band, B8):
        result = SMaTKernel().multiply(A_band, B8)
        assert 0 < result.gflops < 312_000  # below the A100 FP16 TC peak

    def test_mma_instruction_count(self, A_band, B8):
        result = SMaTKernel().multiply(A_band, B8)
        assert result.counters.mma_instructions == result.counters.extra["n_blocks"]

    def test_scalar_variant_has_no_mma(self, A_band, B8):
        result = SMaTKernel(variant="B").multiply(A_band, B8)
        assert result.counters.mma_instructions == 0
        assert result.counters.cuda_core_flops > 0

    def test_warp_count(self, A_band, B8):
        result = SMaTKernel().multiply(A_band, B8)
        n_block_rows = -(-A_band.nrows // 16)
        assert result.counters.extra["n_warps"] == n_block_rows  # N=8 -> one tile

    def test_wider_B_needs_more_warps(self, A_band, rng):
        B32 = rng.normal(size=(A_band.ncols, 32)).astype(np.float32)
        r8 = SMaTKernel().multiply(A_band, rng.normal(size=(A_band.ncols, 8)).astype(np.float32))
        r32 = SMaTKernel().multiply(A_band, B32)
        assert r32.counters.extra["n_warps"] == 4 * r8.counters.extra["n_warps"]

    def test_timing_breakdown_present(self, A_band, B8):
        timing = SMaTKernel().multiply(A_band, B8).timing
        assert {"compute", "memory", "scalar", "overhead"} <= set(timing.breakdown)
        assert timing.time_ms > 0


class TestOptimisationLadder:
    """Figure 2: each added optimisation must not slow the kernel down, and
    the full ladder must provide a substantial cumulative speedup."""

    @pytest.fixture
    def ladder_times(self):
        A = band_matrix(2048, 128, rng=np.random.default_rng(1))
        B = np.random.default_rng(2).normal(size=(2048, 8)).astype(np.float32)
        times = {}
        for variant in ["naive", "B", "T", "BT", "CBT"]:
            times[variant] = SMaTKernel(variant=variant).multiply(A, B).time_ms
        return times

    def test_monotone_improvements(self, ladder_times):
        assert ladder_times["B"] <= ladder_times["naive"] * 1.01
        assert ladder_times["BT"] <= ladder_times["B"] * 1.01
        assert ladder_times["BT"] <= ladder_times["T"] * 1.01
        assert ladder_times["CBT"] <= ladder_times["BT"] * 1.01

    def test_tensor_cores_give_large_speedup(self, ladder_times):
        assert ladder_times["naive"] / ladder_times["BT"] > 3.0

    def test_full_ladder_speedup(self, ladder_times):
        assert ladder_times["naive"] / ladder_times["CBT"] > 4.0


class TestStructureSensitivity:
    def test_fewer_blocks_is_faster(self, rng):
        """Eq. 1: runtime grows with the number of blocks at fixed nnz."""
        n = 1024
        packed = block_random(n, n, (16, 8), block_density=0.02, fill=1.0, rng=rng)
        scattered = uniform_random(n, n, nnz=packed.nnz, rng=rng)
        B = rng.normal(size=(n, 8)).astype(np.float32)
        t_packed = SMaTKernel().multiply(packed, B)
        t_scattered = SMaTKernel().multiply(scattered, B)
        assert t_scattered.counters.extra["n_blocks"] > t_packed.counters.extra["n_blocks"]
        assert t_scattered.time_ms > t_packed.time_ms

    def test_load_imbalance_hurts(self, rng):
        """Section VI-B: a skewed blocks-per-row distribution (dc2-like)
        degrades SMaT's static 2-D schedule."""
        n = 16_384
        nnz = 80_000
        balanced = uniform_random(n, n, nnz=nnz, rng=rng)
        skewed = row_skewed_random(n, n, nnz=nnz, alpha=2.2, rng=rng)
        B = rng.normal(size=(n, 8)).astype(np.float32)
        r_bal = SMaTKernel().multiply(balanced, B)
        r_skew = SMaTKernel().multiply(skewed, B)
        assert r_skew.timing.schedule.load_imbalance > r_bal.timing.schedule.load_imbalance

    def test_custom_block_shape(self, A_band, B8):
        result = SMaTKernel(block_shape=(16, 16)).multiply(A_band, B8)
        np.testing.assert_allclose(result.C, A_band.spmm(B8), rtol=1e-3, atol=1e-3)
        assert result.meta["block_shape"] == (16, 16)
