"""End-to-end observability: spans through every layer, metrics on the wire.

The tentpole acceptance lives here: one traced, tuned, sharded,
process-executor run must produce a single stitched trace covering
engine entry, plan cache, tuner, placement, and per-worker shard
execution; ``/metrics`` keeps its JSON shape and gains a Prometheus
rendering; error paths (worker crash, kernel fallback, admission shed)
close every span they opened.
"""

import json
import os
import signal
import time

import numpy as np
import pytest

from repro.core import SMaTConfig
from repro.core.policy import ExecutionPolicy
from repro.engine import SpMMEngine
from repro.gpu import A100_SXM4_40GB
from repro.matrices import uniform_random
from repro.obs import (
    ObservabilityConfig,
    chrome_trace,
    parse_prometheus,
    validate_chrome_trace,
)
from repro.serve import ServeClientError, SpMMClient, SpMMServer

TRACED = ObservabilityConfig(tracing=True)


@pytest.fixture
def problem(rng):
    A = uniform_random(512, 512, density=0.02, rng=rng)
    B = rng.normal(size=(512, 8)).astype(np.float32)
    return A, B


def _names(spans):
    return {s.name for s in spans}


class TestEngineSpans:
    def test_multiply_cold_then_warm(self, problem):
        A, B = problem
        with SpMMEngine(policy=ExecutionPolicy(obs=TRACED, max_workers=1)) as engine:
            engine.multiply(A, B)
            engine.multiply(A, B)
            spans = engine.tracer.snapshot()
        assert {"engine.multiply", "plan.lookup", "plan.build", "kernel.build"} <= (
            _names(spans)
        )
        lookups = [s for s in spans if s.name == "plan.lookup"]
        assert [s.attrs["cache_hit"] for s in lookups] == [False, True]
        # the warm call built nothing
        assert sum(1 for s in spans if s.name == "plan.build") == 1
        assert engine.tracer.open_count == 0

    def test_disabled_by_default(self, problem):
        A, B = problem
        with SpMMEngine(policy=ExecutionPolicy(max_workers=1)) as engine:
            engine.multiply(A, B)
            assert engine.tracer.enabled is False
            assert engine.tracer.snapshot() == []

    def test_tuned_engine_records_tuner_spans(self, problem):
        A, B = problem
        policy = ExecutionPolicy(obs=TRACED, tune=True, max_workers=1)
        with SpMMEngine(policy=policy) as engine:
            engine.tuner.cache = None  # force a fresh search
            engine.multiply(A, B)
            spans = engine.tracer.snapshot()
        assert {"tuner.resolve", "tuner.search"} <= _names(spans)
        search = next(s for s in spans if s.name == "tuner.search")
        assert search.attrs["candidates"] > 0

    def test_batch_spans_cross_pool_threads(self, problem):
        A, B = problem
        with SpMMEngine(policy=ExecutionPolicy(obs=TRACED, max_workers=2)) as engine:
            engine.multiply_many(A, [B, B, B])
            spans = engine.tracer.snapshot()
        batch = next(s for s in spans if s.name == "engine.multiply_batch")
        items = [s for s in spans if s.name == "engine.execute"]
        assert len(items) == 3
        # items ran on pool threads but stitch to the batch span's trace
        assert all(s.trace_id == batch.trace_id for s in items)
        assert all(s.parent_id == batch.span_id for s in items)


class TestShardedSpans:
    def test_thread_sharded_trace(self, problem):
        A, B = problem
        policy = ExecutionPolicy(
            obs=TRACED, sharded=True, grid="2x2", max_workers=2
        )
        with SpMMEngine(policy=policy) as engine:
            engine.multiply(A, B)
            spans = engine.tracer.snapshot()
        assert {
            "engine.multiply_sharded",
            "shard.partition",
            "shard.prepare",
            "shard.execute",
            "shard.run",
        } <= _names(spans)
        root = next(s for s in spans if s.name == "engine.multiply_sharded")
        runs = [s for s in spans if s.name == "shard.run"]
        assert len(runs) == 4
        assert all(s.trace_id == root.trace_id for s in runs)

    def test_process_sharded_trace_is_stitched(self, problem):
        A, B = problem
        policy = ExecutionPolicy(
            obs=TRACED, sharded=True, grid="2", executor="process", max_workers=2
        )
        with SpMMEngine(policy=policy) as engine:
            engine.multiply(A, B)
            spans = engine.tracer.snapshot()
            host_pid = os.getpid()
        worker_runs = [s for s in spans if s.name == "shard.worker.run"]
        builds = [s for s in spans if s.name == "shard.worker.build"]
        assert len(worker_runs) == 2 and len(builds) == 2
        # spans really came from other processes...
        assert all(s.pid != host_pid for s in worker_runs)
        assert len({s.pid for s in worker_runs}) == 2
        # ...yet share the host trace, parented on the host-side spans
        root = next(s for s in spans if s.name == "engine.multiply_sharded")
        assert all(s.trace_id == root.trace_id for s in worker_runs + builds)
        placement = next(s for s in spans if s.name == "shard.placement")
        assert placement.attrs["workers"] == 2
        # the whole thing exports as one valid Chrome trace
        assert validate_chrome_trace(chrome_trace(spans)) == len(spans)

    def test_process_tuned_trace_covers_all_layers(self, tmp_path, problem):
        """The tentpole acceptance: engine entry -> plan path -> tuner ->
        placement -> per-worker execution, one trace id."""
        A, B = problem
        policy = ExecutionPolicy(
            obs=TRACED,
            sharded=True,
            grid="2",
            executor="process",
            max_workers=2,
            tune=True,
        )
        os.environ["REPRO_TUNING_CACHE"] = str(tmp_path / "tuning.json")
        try:
            with SpMMEngine(policy=policy) as engine:
                engine.multiply(A, B)
                spans = engine.tracer.snapshot()
        finally:
            del os.environ["REPRO_TUNING_CACHE"]
        required = {
            "engine.multiply_sharded",
            "shard.partition",
            "shard.prepare",
            "shard.placement",
            "shard.worker.build",
            "tuner.resolve",
            "shard.execute",
            "shard.worker.run",
        }
        assert required <= _names(spans)
        trace_ids = {s.trace_id for s in spans if s.name in required}
        assert len(trace_ids) == 1


class TestErrorPathSpans:
    def test_kernel_fallback_closes_spans_with_error(self, problem):
        A, B = problem
        tiny = A100_SXM4_40GB.with_overrides(hbm_capacity_gib=0.0001)
        with SpMMEngine(policy=ExecutionPolicy(obs=TRACED, max_workers=1)) as engine:
            _, report = engine.multiply(
                A,
                B,
                config=SMaTConfig(kernel="magicube", arch=tiny),
                return_report=True,
            )
            spans = engine.tracer.snapshot()
            assert engine.tracer.open_count == 0
        assert report.preprocessing.fallback_from == "magicube"
        build = next(s for s in spans if s.name == "kernel.build")
        assert build.status == "error"
        assert "Magicube" in build.error
        fallback = next(s for s in spans if s.name == "kernel.fallback")
        assert fallback.status == "ok"
        assert fallback.attrs["requested"] == "magicube"

    def test_worker_sigkill_closes_spans_with_error(self, problem):
        A, B = problem
        policy = ExecutionPolicy(
            obs=TRACED, sharded=True, grid="2", executor="process", max_workers=2
        )
        with SpMMEngine(policy=policy) as engine:
            engine.multiply(A, B)
            executor = engine.shard_executor
            victim, _ = executor._workers[0]
            os.kill(victim.pid, signal.SIGKILL)
            victim.join(5.0)
            with pytest.raises(RuntimeError, match="died unexpectedly"):
                engine.multiply(A, B)
            spans = engine.tracer.snapshot()
            # no span leaks: everything opened was closed, the failing
            # execute is marked as an error
            assert engine.tracer.open_count == 0
        failed = [
            s
            for s in spans
            if s.name in ("engine.multiply_sharded", "shard.execute")
            and s.status == "error"
        ]
        assert failed, "the crashed multiply must close its spans as errors"
        assert any("died unexpectedly" in (s.error or "") for s in failed)


class TestServingObservability:
    @staticmethod
    def _wait(predicate, timeout_s=5.0):
        """Poll until ``predicate()`` is true: the request span/log/counter
        lands in the handler's ``finally`` *after* the response is sent."""
        deadline = time.time() + timeout_s
        while not predicate() and time.time() < deadline:
            time.sleep(0.005)
        assert predicate()

    def _register(self, client, rng):
        A = uniform_random(64, 64, density=0.05, rng=rng)
        return A, client.register(A)

    def test_http_span_wraps_engine_spans(self, rng):
        policy = ExecutionPolicy(obs=TRACED, max_workers=1)
        with SpMMServer(policy=policy) as server:
            client = SpMMClient(server.url)
            A, fp = self._register(client, rng)
            client.multiply(fp, np.ones((64, 2), dtype=np.float32))
            self._wait(
                lambda: any(
                    s.attrs.get("endpoint") == "POST /multiply"
                    for s in server.engine.tracer.snapshot()
                    if s.name == "http.request"
                )
            )
            spans = server.engine.tracer.snapshot()
            assert server.engine.tracer.open_count == 0
        http = [s for s in spans if s.name == "http.request"]
        multiply = next(
            s for s in http if s.attrs.get("endpoint") == "POST /multiply"
        )
        assert multiply.status == "ok" and multiply.attrs["status"] == 200
        engine_spans = [
            s for s in spans if s.name == "engine.execute" and s.trace_id == multiply.trace_id
        ]
        assert engine_spans, "engine spans must nest under the HTTP request span"

    def test_request_log_carries_trace_ids(self, rng, tmp_path):
        log_path = tmp_path / "requests.log"
        policy = ExecutionPolicy(obs=TRACED, max_workers=1)
        with open(log_path, "w") as stream:
            with SpMMServer(policy=policy, log_stream=stream) as server:
                client = SpMMClient(server.url)
                A, fp = self._register(client, rng)
                client.multiply(fp, np.ones((64, 2), dtype=np.float32))
                self._wait(
                    lambda: any(
                        s.attrs.get("path") == "/multiply"
                        for s in server.engine.tracer.snapshot()
                        if s.name == "http.request"
                    )
                )
                spans = server.engine.tracer.snapshot()
        records = [json.loads(line) for line in log_path.read_text().splitlines()]
        request_lines = [r for r in records if r["event"] == "request"]
        assert request_lines
        multiply_line = next(r for r in request_lines if r["path"] == "/multiply")
        for key in ("ts", "request_id", "method", "tenant", "status", "wall_ms",
                    "bytes_in", "trace_id", "span_id"):
            assert key in multiply_line
        span = next(
            s
            for s in spans
            if s.name == "http.request" and s.attrs.get("path") == "/multiply"
        )
        assert multiply_line["trace_id"] == span.trace_id
        assert multiply_line["span_id"] == span.span_id

    def test_untraced_log_lines_have_null_ids(self, rng, tmp_path):
        log_path = tmp_path / "requests.log"
        with open(log_path, "w") as stream:
            with SpMMServer(policy=ExecutionPolicy(max_workers=1), log_stream=stream) as server:
                SpMMClient(server.url).health()
                self._wait(lambda: server.metrics.requests_total >= 1)
        record = json.loads(log_path.read_text().splitlines()[-1])
        assert record["trace_id"] is None and record["span_id"] is None

    def test_metrics_json_shape_is_pinned(self, rng):
        """Satellite regression: the consolidated histogram must keep the
        historical /metrics JSON keys byte-compatible."""
        with SpMMServer(policy=ExecutionPolicy(max_workers=1)) as server:
            client = SpMMClient(server.url)
            A, fp = self._register(client, rng)
            client.multiply(fp, np.ones((64, 2), dtype=np.float32))
            self._wait(lambda: server.metrics.requests_total >= 2)
            doc = client.metrics()
        assert set(doc["latency_ms"]) == {"count", "mean_ms", "p50_ms", "p99_ms"}
        assert doc["latency_ms"]["count"] >= 1
        assert isinstance(doc["requests_total"], int)
        assert doc["responses_by_status"]
        assert "admission" in doc and "plan_cache" in doc and "engine" in doc

    def test_metrics_prometheus_format_parses(self, rng):
        with SpMMServer(policy=ExecutionPolicy(max_workers=1)) as server:
            client = SpMMClient(server.url)
            A, fp = self._register(client, rng)
            client.multiply(fp, np.ones((64, 2), dtype=np.float32))
            self._wait(lambda: server.metrics.requests_total >= 2)
            import urllib.request

            with urllib.request.urlopen(
                server.url + "/metrics?format=prometheus"
            ) as resp:
                assert resp.status == 200
                assert resp.headers["Content-Type"].startswith("text/plain")
                text = resp.read().decode("utf-8")
        samples = parse_prometheus(text)  # the strict line checker
        names = {name for name, _, _ in samples}
        assert {
            "repro_http_requests_total",
            "repro_http_request_wall_ms_bucket",
            "repro_http_request_wall_ms_count",
            "repro_engine_item_wall_ms_bucket",
            "repro_http_uptime_seconds",
        } <= names
        by_endpoint = [
            labels
            for name, labels, _ in samples
            if name == "repro_http_requests_total"
        ]
        assert any(lbl.get("endpoint") == "POST /multiply" for lbl in by_endpoint)

    def test_admission_shed_closes_span_with_error(self, rng):
        policy = ExecutionPolicy(obs=TRACED, max_workers=1)
        with SpMMServer(policy=policy, max_pending_jobs=0) as server:
            client = SpMMClient(server.url)
            A, fp = self._register(client, rng)
            with pytest.raises(ServeClientError) as err:
                client.submit(fp, np.ones((64, 2), dtype=np.float32))
            assert err.value.status == 429
            self._wait(
                lambda: any(
                    s.attrs.get("endpoint") == "POST /jobs"
                    for s in server.engine.tracer.snapshot()
                    if s.name == "http.request"
                )
            )
            spans = server.engine.tracer.snapshot()
            assert server.engine.tracer.open_count == 0
        shed = next(
            s
            for s in spans
            if s.name == "http.request" and s.attrs.get("endpoint") == "POST /jobs"
        )
        assert shed.status == "error"
        assert shed.attrs["status"] == 429


class TestEngineTelemetryParity:
    def test_telemetry_served_by_obs_histogram(self, problem):
        """Satellite: engine telemetry (completed/mean/p50/p99) is now a
        view over the obs histogram, same values as the old deque."""
        A, B = problem
        with SpMMEngine(policy=ExecutionPolicy(max_workers=1)) as engine:
            engine.multiply_many(A, [B] * 5)
            tel = engine.telemetry()
        assert tel.completed == 5
        assert tel.p50_ms <= tel.p99_ms
        hist = engine.metrics.get("repro_engine_item_wall_ms")
        assert hist.count == 5
        assert tel.p50_ms == pytest.approx(hist.percentile(50))
