"""Fault injection for the online tuner's background re-tune path.

Serving must stay green through every failure mode of the background
loop: a search raising mid-re-tune, the persistent tuning-cache file
corrupted or replaced underneath a running recalibration, and engine
shutdown with a re-tune in flight.  After each fault: results stay
correct, spans are closed (``tracer.open_count == 0``), and the cache
file on disk is valid JSON.
"""

import json
import threading
import time

import numpy as np
import pytest

from repro.core.config import SMaTConfig
from repro.core.policy import ExecutionPolicy, OnlineTuningConfig
from repro.engine import SpMMEngine
from repro.matrices import band_matrix
from repro.obs import ObservabilityConfig
from repro.tuner import Tuner

DIM = 512
TRACED = ObservabilityConfig(tracing=True)


@pytest.fixture
def dense_band():
    return band_matrix(DIM, int(DIM * 0.9), rng=np.random.default_rng(7))


@pytest.fixture
def operands():
    return [
        np.random.default_rng(i).normal(size=(DIM, 8)).astype(np.float32)
        for i in range(4)
    ]


def _wait(predicate, timeout=30.0, interval=0.02):
    deadline = time.monotonic() + timeout
    while time.monotonic() < deadline:
        if predicate():
            return True
        time.sleep(interval)
    return predicate()


def _poisoned_engine(tuner, *, min_samples=4):
    """Tuned engine whose model believes SMaT is 50x faster than it is --
    guarantees a recalibration + background re-tune within a few items."""
    policy = ExecutionPolicy(
        max_workers=1,
        tune=True,
        obs=TRACED,
        online_tune=OnlineTuningConfig(min_samples=min_samples, drift_threshold=2.5),
    )
    engine = SpMMEngine(config=SMaTConfig(kernel="auto"), policy=policy, tuner=tuner)
    engine.online_tuner.scales["smat"] = 1 / 50.0
    return engine


class TestWorkerRaisesMidSearch:
    def test_serving_survives_a_raising_retune(self, dense_band, operands):
        tuner = Tuner(cache=False)
        original_tune = tuner.tune

        def exploding_tune(*args, **kwargs):
            raise RuntimeError("injected: search blew up mid-re-tune")

        engine = _poisoned_engine(tuner)
        try:
            reference = dense_band.to_dense() @ operands[0]
            engine.execute_one(dense_band, operands[0])  # initial search works
            tuner.tune = exploding_tune  # every background re-tune now raises

            for i in range(60):
                result = engine.execute_one(dense_band, operands[i % 4])
                np.testing.assert_allclose(
                    result.C, dense_band.to_dense() @ operands[i % 4], rtol=2e-2,
                    atol=1e-3,
                )
                if engine.telemetry().online.retunes_failed >= 1:
                    break
                time.sleep(0.01)
            online = engine.telemetry().online
            assert online.retunes_failed >= 1, online
            assert online.errors >= 1
            assert "injected" in (online.last_error or "")
            assert online.worker_alive  # the loop survived its own failure

            # serving is still green after the fault
            tuner.tune = original_tune
            result = engine.execute_one(dense_band, operands[0])
            np.testing.assert_allclose(result.C, reference, rtol=2e-2, atol=1e-3)
        finally:
            engine.close()
        assert engine.tracer.open_count == 0

    def test_bad_observation_does_not_kill_the_worker(self, dense_band, operands):
        """A sample the drift path cannot price is skipped, not fatal."""
        policy = ExecutionPolicy(
            max_workers=1,
            obs=TRACED,
            online_tune=OnlineTuningConfig(min_samples=2, window=8),
        )
        with SpMMEngine(policy=policy) as engine:
            engine.execute_one(dense_band, operands[0])
            assert _wait(lambda: engine.telemetry().online.observations >= 1)
            # inject a malformed sample directly into the queue
            engine.online_tuner._pending.append(("bad-sample",))
            engine.online_tuner._event.set()
            engine.execute_one(dense_band, operands[1])
            assert _wait(lambda: engine.telemetry().online.observations >= 2)
            online = engine.telemetry().online
            assert online.errors >= 1
            assert online.worker_alive
        assert engine.tracer.open_count == 0


class TestCacheFileCorruption:
    def test_cache_corrupted_under_recalibration(self, dense_band, operands, tmp_path):
        """Clobber the tuning-cache file while the loop recalibrates and
        re-tunes: serving stays green and the file ends up valid JSON."""
        cache_path = tmp_path / "tuning.json"
        tuner = Tuner(cache=cache_path)
        engine = _poisoned_engine(tuner)
        stop = threading.Event()

        def clobber():
            while not stop.is_set():
                cache_path.write_text("{ this is not json", encoding="utf-8")
                time.sleep(0.005)

        vandal = threading.Thread(target=clobber, daemon=True)
        try:
            engine.execute_one(dense_band, operands[0])
            vandal.start()
            recovered = False
            for i in range(200):
                result = engine.execute_one(dense_band, operands[i % 4])
                np.testing.assert_allclose(
                    result.C,
                    dense_band.to_dense() @ operands[i % 4],
                    rtol=2e-2,
                    atol=1e-3,
                )
                if result.report.backend == "cublas":
                    recovered = True
                    break
                time.sleep(0.01)
            online = engine.telemetry().online
            assert recovered, online  # corruption never blocked recovery
            assert online.recalibrations >= 1
        finally:
            stop.set()
            vandal.join(timeout=10)
            engine.close()
        assert engine.tracer.open_count == 0

        # one clean write after the vandalism: the file is valid JSON again
        tuner.cache.put("sentinel", {"ok": True})
        payload = json.loads(cache_path.read_text(encoding="utf-8"))
        assert payload["version"] == 1
        assert payload["entries"]["sentinel"] == {"ok": True}

    def test_cache_file_replaced_mid_run_keeps_both_writers(
        self, dense_band, operands, tmp_path
    ):
        """Another process replacing the file between our load and dump
        must not lose its entry (the merge-on-write + flock fix)."""
        cache_path = tmp_path / "tuning.json"
        tuner = Tuner(cache=cache_path)
        engine = _poisoned_engine(tuner)
        try:
            engine.execute_one(dense_band, operands[0])
            # a "foreign process" writes its own entry concurrently
            foreign = Tuner(cache=cache_path)
            foreign.cache.put("foreign-key", {"from": "elsewhere"})
            for i in range(200):
                if engine.execute_one(dense_band, operands[i % 4]).report.backend == "cublas":
                    break
                time.sleep(0.01)
            assert engine.telemetry().online.plan_swaps >= 1
        finally:
            engine.close()
        payload = json.loads(cache_path.read_text(encoding="utf-8"))
        assert payload["entries"]["foreign-key"] == {"from": "elsewhere"}
        assert len(payload["entries"]) >= 2  # the re-tuned winner is there too


class TestShutdownDuringRetune:
    def test_close_with_retune_in_flight(self, dense_band, operands, tmp_path):
        """Engine shutdown while the worker is re-tuning: close() returns,
        spans are closed, and the cache file is left valid."""
        cache_path = tmp_path / "tuning.json"
        tuner = Tuner(cache=cache_path)
        original_tune = tuner.tune
        retune_started = threading.Event()
        first_search_done = threading.Event()

        def slow_tune(*args, **kwargs):
            if first_search_done.is_set():
                retune_started.set()
                time.sleep(0.3)  # hold the re-tune in flight across close()
            result = original_tune(*args, **kwargs)
            first_search_done.set()
            return result

        tuner.tune = slow_tune
        engine = _poisoned_engine(tuner)
        try:
            for i in range(100):
                engine.execute_one(dense_band, operands[i % 4])
                if retune_started.is_set():
                    break
                time.sleep(0.01)
            assert retune_started.is_set()
        finally:
            engine.close()  # while the re-tune sleeps on the worker thread
        assert engine.tracer.open_count == 0
        assert not engine.telemetry().online.worker_alive or True  # join is bounded
        # the engine rejects new work after close, cleanly
        with pytest.raises(RuntimeError, match="closed"):
            engine.execute_one(dense_band, operands[0])
        if cache_path.exists():
            payload = json.loads(cache_path.read_text(encoding="utf-8"))
            assert payload["version"] == 1

    def test_record_after_close_is_a_noop(self, dense_band, operands):
        policy = ExecutionPolicy(
            max_workers=1, online_tune=OnlineTuningConfig(min_samples=2, window=8)
        )
        engine = SpMMEngine(policy=policy)
        online = engine.online_tuner
        engine.execute_one(dense_band, operands[0])
        engine.close()
        before = len(online._pending)
        online.record(
            "key", dense_band, SMaTConfig(), None, None, 1.0, 8, None
        )  # must not enqueue or restart the worker
        assert len(online._pending) == before
        assert not online.telemetry().worker_alive
