"""Unit tests for the BCSR format (SMaT's internal format)."""

import numpy as np
import pytest

from repro.formats import BCSRMatrix, CSRMatrix
from repro.matrices import band_matrix, uniform_random


class TestConversion:
    def test_roundtrip_to_dense(self, small_dense):
        bcsr = BCSRMatrix.from_dense(small_dense, (4, 4))
        np.testing.assert_allclose(bcsr.to_dense(), small_dense)

    def test_roundtrip_non_divisible_shape(self, rng):
        dense = rng.normal(size=(17, 23)).astype(np.float32)
        dense[rng.random(dense.shape) < 0.6] = 0.0
        bcsr = BCSRMatrix.from_dense(dense, (16, 8))
        np.testing.assert_allclose(bcsr.to_dense(), dense)

    def test_roundtrip_to_csr(self, small_csr):
        bcsr = BCSRMatrix.from_csr(small_csr, (8, 4))
        np.testing.assert_allclose(bcsr.to_csr().to_dense(), small_csr.to_dense())

    def test_roundtrip_to_coo(self, small_csr):
        bcsr = BCSRMatrix.from_csr(small_csr, (3, 5))
        np.testing.assert_allclose(bcsr.to_coo().to_dense(), small_csr.to_dense())

    def test_empty_matrix(self):
        bcsr = BCSRMatrix.from_csr(CSRMatrix.empty((32, 32)), (16, 8))
        assert bcsr.n_blocks == 0
        assert bcsr.nnz == 0
        assert not bcsr.to_dense().any()

    def test_block_grid_dimensions(self):
        csr = CSRMatrix.from_dense(np.ones((33, 17), dtype=np.float32))
        bcsr = BCSRMatrix.from_csr(csr, (16, 8))
        assert bcsr.n_block_rows == 3
        assert bcsr.n_block_cols == 3

    def test_invalid_block_shape(self, small_csr):
        with pytest.raises(ValueError):
            BCSRMatrix.from_csr(small_csr, (0, 8))


class TestBlockAccounting:
    def test_single_entry_one_block(self):
        dense = np.zeros((32, 32), dtype=np.float32)
        dense[5, 9] = 3.0
        bcsr = BCSRMatrix.from_dense(dense, (16, 8))
        assert bcsr.n_blocks == 1
        assert bcsr.nnz == 1
        assert bcsr.padding_zeros == 16 * 8 - 1

    def test_block_placement(self):
        dense = np.zeros((32, 32), dtype=np.float32)
        dense[20, 30] = 1.0  # block row 1, block col 3 for (16, 8)
        bcsr = BCSRMatrix.from_dense(dense, (16, 8))
        assert list(bcsr.blocks_per_row()) == [0, 1]
        assert bcsr.bcol[0] == 3
        assert bcsr.blocks[0][20 - 16, 30 - 24] == 1.0

    def test_dense_blocks_have_no_padding(self, blocky_matrix):
        bcsr = BCSRMatrix.from_csr(blocky_matrix, (16, 8))
        assert bcsr.padding_zeros == 0
        assert bcsr.fill_in_ratio == pytest.approx(1.0)
        assert np.all(bcsr.block_density() == 1.0)

    def test_figure1_example_counts(self):
        # the 8x8 example of Figure 1: 28 nonzeros produce 13 blocks of 2x2
        # with 24 padding zeros in the original ordering
        dense = np.zeros((8, 8), dtype=np.float32)
        pattern = {
            0: [6, 7],
            1: [0, 1, 2, 3, 4],
            2: [2, 3, 4, 5],
            3: [0, 1, 6, 7],
            4: [2, 3, 4, 5],
            5: [0, 1, 6],
            6: [2, 3, 4, 5],
            7: [0, 1, 7],
        }
        for r, cols in pattern.items():
            for c in cols:
                dense[r, c] = 1.0
        bcsr = BCSRMatrix.from_dense(dense, (2, 2))
        lower, upper = bcsr.block_count_bounds()
        assert lower <= bcsr.n_blocks <= upper
        assert bcsr.stored_values == bcsr.n_blocks * 4
        assert bcsr.padding_zeros == bcsr.stored_values - bcsr.nnz

    def test_eq2_bounds_hold_for_random_matrices(self, rng):
        for density in (0.001, 0.01, 0.05):
            csr = uniform_random(128, 128, density=density, rng=rng)
            bcsr = BCSRMatrix.from_csr(csr, (16, 8))
            lower, upper = bcsr.block_count_bounds()
            assert lower <= bcsr.n_blocks <= upper

    def test_band_matrix_blocks_are_dense(self):
        # paper Section VI-C: for band matrices BCSR blocks are already dense
        A = band_matrix(512, 64, rng=np.random.default_rng(0))
        bcsr = BCSRMatrix.from_csr(A, (16, 8))
        assert bcsr.fill_in_ratio < 1.3

    def test_blocks_per_row_sums_to_total(self, medium_random):
        bcsr = BCSRMatrix.from_csr(medium_random, (16, 8))
        assert bcsr.blocks_per_row().sum() == bcsr.n_blocks

    def test_row_block_stats(self, medium_random):
        bcsr = BCSRMatrix.from_csr(medium_random, (16, 8))
        stats = bcsr.row_block_stats()
        assert stats["n_blocks"] == bcsr.n_blocks
        assert stats["mean"] == pytest.approx(bcsr.blocks_per_row().mean())
        assert stats["max"] == bcsr.blocks_per_row().max()

    def test_memory_footprint_grows_with_padding(self):
        dense_block = np.zeros((32, 32), dtype=np.float32)
        dense_block[:16, :8] = 1.0
        scattered = np.zeros((32, 32), dtype=np.float32)
        scattered[::16, ::8] = 1.0  # 2x4 = 8 separate blocks, 1 nnz each
        packed = BCSRMatrix.from_dense(dense_block, (16, 8))
        spread = BCSRMatrix.from_dense(scattered, (16, 8))
        assert spread.n_blocks > packed.n_blocks
        assert spread.memory_footprint_bytes() > packed.memory_footprint_bytes()


class TestSpMM:
    def test_spmm_matches_reference(self, small_csr, rng):
        bcsr = BCSRMatrix.from_csr(small_csr, (16, 8))
        B = rng.normal(size=(small_csr.ncols, 6)).astype(np.float32)
        np.testing.assert_allclose(bcsr.spmm(B), small_csr.spmm(B), rtol=1e-4, atol=1e-4)

    def test_spmm_with_padding_columns(self, rng):
        # K not a multiple of the block width: B must be padded internally
        dense = rng.normal(size=(20, 13)).astype(np.float32)
        dense[rng.random(dense.shape) < 0.5] = 0.0
        bcsr = BCSRMatrix.from_dense(dense, (16, 8))
        B = rng.normal(size=(13, 4)).astype(np.float32)
        np.testing.assert_allclose(bcsr.spmm(B), dense @ B, rtol=1e-4, atol=1e-4)

    def test_spmv(self, small_csr, rng):
        bcsr = BCSRMatrix.from_csr(small_csr, (8, 8))
        x = rng.normal(size=small_csr.ncols).astype(np.float32)
        np.testing.assert_allclose(bcsr.spmv(x), small_csr.spmv(x), rtol=1e-4, atol=1e-4)

    def test_various_block_shapes(self, small_csr, rng):
        B = rng.normal(size=(small_csr.ncols, 3)).astype(np.float32)
        ref = small_csr.spmm(B)
        for shape in [(2, 2), (4, 8), (16, 16), (7, 3)]:
            bcsr = BCSRMatrix.from_csr(small_csr, shape)
            np.testing.assert_allclose(bcsr.spmm(B), ref, rtol=1e-4, atol=1e-4)
