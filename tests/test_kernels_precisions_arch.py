"""Cross-precision and cross-architecture behaviour of the kernels.

The paper states SMaT "works with all data types supported by the MMA
hardware units" (Section I) and evaluates on an A100.  These tests check
that the reproduction keeps that generality: every precision produces the
correct product with its MMA-matched block shape, and moving to a faster
or slower architecture moves the simulated time the right way.
"""

import numpy as np
import pytest

from repro.gpu import A100_SXM4_40GB, H100_SXM5_80GB, V100_SXM2_16GB
from repro.kernels import CublasDenseKernel, SMaTKernel
from repro.matrices import band_matrix, uniform_random

PRECISIONS = ["fp16", "bf16", "tf32", "fp64", "int8"]


@pytest.fixture
def A(rng):
    return uniform_random(512, 512, density=0.02, rng=rng)


@pytest.fixture
def B(A, rng):
    return rng.normal(size=(A.ncols, 8)).astype(np.float32)


class TestPrecisions:
    @pytest.mark.parametrize("precision", PRECISIONS)
    def test_smat_correct_for_every_precision(self, A, B, precision):
        result = SMaTKernel(precision=precision).multiply(A, B)
        np.testing.assert_allclose(result.C, A.spmm(B), rtol=1e-3, atol=1e-3)

    @pytest.mark.parametrize("precision", PRECISIONS)
    def test_block_shape_matches_mma_shape(self, A, B, precision):
        kernel = SMaTKernel(precision=precision)
        kernel.prepare(A)
        assert kernel.block_shape == kernel.precision.block_shape
        assert kernel.bcsr.block_shape == kernel.precision.block_shape

    def test_fp64_slower_than_fp16(self, rng):
        """FP64 Tensor-Core throughput is ~16x lower than FP16 on the A100,
        so the same (compute-heavy) problem must take longer."""
        A = band_matrix(2048, 512, rng=rng)
        B = rng.normal(size=(2048, 64)).astype(np.float32)
        t_fp16 = SMaTKernel(precision="fp16").multiply(A, B).timing.time_s
        t_fp64 = SMaTKernel(precision="fp64").multiply(A, B).timing.time_s
        assert t_fp64 > t_fp16

    def test_int8_not_slower_than_fp16(self, rng):
        A = band_matrix(2048, 512, rng=rng)
        B = rng.normal(size=(2048, 64)).astype(np.float32)
        t_fp16 = SMaTKernel(precision="fp16").multiply(A, B).timing.time_s
        t_int8 = SMaTKernel(precision="int8").multiply(A, B).timing.time_s
        assert t_int8 <= t_fp16 * 1.1


class TestArchitectures:
    @pytest.mark.parametrize("arch", [A100_SXM4_40GB, V100_SXM2_16GB, H100_SXM5_80GB])
    def test_correct_on_every_architecture(self, A, B, arch):
        result = SMaTKernel(arch).multiply(A, B)
        np.testing.assert_allclose(result.C, A.spmm(B), rtol=1e-3, atol=1e-3)

    def test_h100_faster_than_a100_faster_than_v100(self, rng):
        A = band_matrix(4096, 1024, rng=rng)
        B = rng.normal(size=(4096, 64)).astype(np.float32)
        times = {
            arch.name: SMaTKernel(arch).multiply(A, B).timing.time_s
            for arch in (V100_SXM2_16GB, A100_SXM4_40GB, H100_SXM5_80GB)
        }
        assert times["H100-SXM5-80GB"] < times["A100-SXM4-40GB"] < times["V100-SXM2-16GB"]

    def test_cublas_scales_with_tc_peak(self, rng):
        A = band_matrix(2048, 2047, rng=rng)
        B = rng.normal(size=(2048, 256)).astype(np.float32)
        t_a100 = CublasDenseKernel(A100_SXM4_40GB).multiply(A, B).timing.time_s
        t_h100 = CublasDenseKernel(H100_SXM5_80GB).multiply(A, B).timing.time_s
        assert t_h100 < t_a100

    def test_bandwidth_override_slows_memory_bound_kernel(self, rng):
        A = band_matrix(4096, 256, rng=rng)
        B = rng.normal(size=(4096, 8)).astype(np.float32)
        slow_arch = A100_SXM4_40GB.with_overrides(hbm_bandwidth_gbs=400.0)
        t_fast = SMaTKernel(A100_SXM4_40GB).multiply(A, B).timing.time_s
        t_slow = SMaTKernel(slow_arch).multiply(A, B).timing.time_s
        assert t_slow > t_fast
