"""Sharded execution: scatter-gather correctness, caching, reports."""

import numpy as np
import pytest

from repro import SMaT, SMaTConfig, ShardedSpMM
from repro.engine import SpMMEngine
from repro.matrices import block_band_matrix, suitesparse
from repro.shard import ShardPlanner, execute_partition, make_partition
from repro.tuner import Tuner


def _operand(A, n=8, seed=0):
    rng = np.random.default_rng(seed)
    return rng.normal(size=(A.ncols, n)).astype(np.float32)


class TestCorrectnessOnTableI:
    """Acceptance: sharded C equals unsharded SMaT.multiply on all nine
    Table-I stand-ins, for 1D and 2D partitions."""

    @pytest.mark.parametrize("name", suitesparse.TABLE1_NAMES)
    @pytest.mark.parametrize("grid", ["4", "2x2"])
    def test_matches_single_plan(self, name, grid):
        A = suitesparse.load(name, scale=0.04)
        B = _operand(A)
        reference = SMaT(A, SMaTConfig()).multiply(B)
        with ShardedSpMM(A, grid, max_workers=2) as sharded:
            C = sharded.multiply(B)
        np.testing.assert_allclose(C, reference, rtol=1e-3, atol=1e-3)


class TestFacade:
    def test_multiply_and_report(self, medium_random):
        B = _operand(medium_random)
        with ShardedSpMM(medium_random, "2x2") as sharded:
            C, report = sharded.multiply(B, return_report=True)
        np.testing.assert_allclose(C, medium_random.spmm(B), rtol=1e-3, atol=1e-3)
        assert report.n_shards == 4
        assert report.grid == (2, 2)
        assert report.nnz == medium_random.nnz
        assert len(report.table()) == 4
        rows = report.table()
        assert {"shard", "rows", "cols", "nnz", "imbalance", "config"} <= set(rows[0])

    def test_vector_operand_spmv(self, medium_random):
        x = _operand(medium_random, n=1).ravel()
        with ShardedSpMM(medium_random, 3) as sharded:
            y = sharded.multiply(x)
        assert y.ndim == 1
        np.testing.assert_allclose(
            y, medium_random.spmm(x[:, None]).ravel(), rtol=1e-3, atol=1e-3
        )

    def test_preprocess_once_then_cache_hits(self, medium_random):
        B = _operand(medium_random)
        with ShardedSpMM(medium_random, 4) as sharded:
            misses_after_init = sharded.engine.cache_stats.misses
            sharded.multiply(B)
            sharded.multiply(B)
            # no further plan builds after the eager preprocess
            assert sharded.engine.cache_stats.misses == misses_after_init

    def test_shared_engine_reuses_plans_and_stays_open(self, medium_random):
        B = _operand(medium_random)
        with SpMMEngine(cache_size=32, max_workers=2) as engine:
            with ShardedSpMM(medium_random, 4, engine=engine) as first:
                C1 = first.multiply(B)
            # closing the facade must not close a shared engine
            with ShardedSpMM(medium_random, 4, engine=engine) as second:
                assert all(e.cache_hit for e in second.entries)
                C2 = second.multiply(B)
        np.testing.assert_array_equal(C1, C2)

    def test_rejects_tuning_knobs_with_shared_engine(self, medium_random):
        with SpMMEngine() as engine:
            with pytest.raises(ValueError, match="engine"):
                ShardedSpMM(medium_random, 2, engine=engine, tune=True)

    def test_rejects_non_csr(self):
        with pytest.raises(TypeError):
            ShardedSpMM(np.eye(8), 2)

    def test_failed_preprocess_closes_owned_engine(self, medium_random):
        import threading

        from repro.core.policy import ExecutionPolicy

        class BoomTuner:
            def resolve(self, A, cfg):
                raise RuntimeError("boom")

        # pinned to the thread executor: only it consults the host-side
        # tuner during prepare (process workers build their own tuner)
        before = {t.name for t in threading.enumerate()}
        with pytest.raises(RuntimeError, match="boom"):
            ShardedSpMM(
                medium_random,
                2,
                policy=ExecutionPolicy(executor="thread", tune=True),
                tuner=BoomTuner(),
            )
        leaked = [
            t.name
            for t in threading.enumerate()
            if t.name.startswith("spmm-engine") and t.name not in before
        ]
        assert not leaked

    def test_rejects_bad_mode(self, medium_random):
        with pytest.raises(ValueError, match="mode"):
            ShardedSpMM(medium_random, 2, mode="banana")

    def test_rejects_wrong_operand_shape(self, medium_random):
        with ShardedSpMM(medium_random, 2) as sharded:
            with pytest.raises(ValueError, match="rows"):
                sharded.multiply(np.ones((medium_random.ncols + 1, 4), dtype=np.float32))


class TestEngineIntegration:
    def test_multiply_sharded_matches_multiply(self, medium_random):
        B = _operand(medium_random)
        with SpMMEngine(cache_size=32) as engine:
            C_plain = engine.multiply(medium_random, B)
            C_sharded, report = engine.multiply_sharded(
                medium_random, B, grid="2x2", return_report=True
            )
        np.testing.assert_allclose(C_sharded, C_plain, rtol=1e-3, atol=1e-3)
        assert report.imbalance >= 1.0

    def test_partition_and_plans_cached_across_calls(self, medium_random):
        B = _operand(medium_random)
        with SpMMEngine(cache_size=32) as engine:
            engine.multiply_sharded(medium_random, B, grid=4)
            misses = engine.cache_stats.misses
            _, report = engine.multiply_sharded(medium_random, B, grid=4, return_report=True)
            assert engine.cache_stats.misses == misses
            assert all(s.cache_hit for s in report.shards)

    def test_undersized_cache_grows_instead_of_thrashing(self, medium_random):
        """A default-sized plan cache must hold the partition plus every
        shard plan at once; grid >= cache_size used to rebuild shards on
        every warm call."""
        B = _operand(medium_random)
        with SpMMEngine(cache_size=2) as engine:
            engine.multiply_sharded(medium_random, B, grid=4)
            misses = engine.cache_stats.misses
            _, report = engine.multiply_sharded(medium_random, B, grid=4, return_report=True)
            assert engine.cache_stats.misses == misses
            assert all(s.cache_hit for s in report.shards)
            assert engine.cache_stats.evictions == 0

    def test_distinct_grids_get_distinct_partitions(self, medium_random):
        B = _operand(medium_random)
        with SpMMEngine(cache_size=32) as engine:
            C1 = engine.multiply_sharded(medium_random, B, grid=2)
            C2 = engine.multiply_sharded(medium_random, B, grid="2x2")
        np.testing.assert_allclose(C1, C2, rtol=1e-3, atol=1e-3)

    def test_single_worker_engine_runs_sequentially(self, medium_random):
        B = _operand(medium_random)
        with SpMMEngine(max_workers=1, cache_size=32) as engine:
            C = engine.multiply_sharded(medium_random, B, grid="2x2")
        np.testing.assert_allclose(C, medium_random.spmm(B), rtol=1e-3, atol=1e-3)

    def test_closed_engine_rejects_sharded_work(self, medium_random):
        engine = SpMMEngine()
        part = engine.partition_for(medium_random, 2)
        engine.close()
        with pytest.raises(RuntimeError):
            engine.multiply_sharded(medium_random, _operand(medium_random))
        with pytest.raises(RuntimeError):
            engine.partition_for(medium_random, 2)
        with pytest.raises(RuntimeError):
            engine.shard_plans_for(part)


class TestEmptyShards:
    def test_block_diagonal_2x2_off_cells_empty(self):
        # block-diagonal: a 2x2 grid leaves the off-diagonal cells (nearly)
        # empty; they must contribute nothing and not build plans
        rng = np.random.default_rng(3)
        half = block_band_matrix(256, block_size=8, block_bandwidth=1, rng=rng)
        dense = np.zeros((512, 512), dtype=np.float32)
        dense[:256, :256] = half.to_dense()
        dense[256:, 256:] = block_band_matrix(
            256, block_size=8, block_bandwidth=1, rng=rng
        ).to_dense()
        from repro.formats import CSRMatrix

        A = CSRMatrix.from_dense(dense)
        B = _operand(A)
        with ShardedSpMM(A, "2x2") as sharded:
            C, report = sharded.multiply(B, return_report=True)
        np.testing.assert_allclose(C, A.spmm(B), rtol=1e-3, atol=1e-3)
        empties = [s for s in report.shards if s.nnz == 0]
        for s in empties:
            assert s.config == "-"
            assert s.blocks == 0


class TestPerShardTuning:
    def test_tuned_shards_match_and_may_diverge_in_config(self, medium_random):
        B = _operand(medium_random)
        tuner = Tuner(cache=False, max_measure=4)
        with ShardedSpMM(medium_random, 2, tune=True, tuner=tuner) as sharded:
            C, report = sharded.multiply(B, return_report=True)
        np.testing.assert_allclose(C, medium_random.spmm(B), rtol=1e-3, atol=1e-3)
        # every non-empty shard carries the config its own search chose
        for s in report.shards:
            if s.nnz:
                assert "/" in s.config


class TestExecutorValidation:
    def test_entry_count_mismatch_rejected(self, medium_random):
        part = make_partition(medium_random, 2)
        from repro.engine.cache import PlanCache

        entries = ShardPlanner(PlanCache(8)).plans_for(part)
        with pytest.raises(ValueError, match="per shard"):
            execute_partition(part, entries[:1], _operand(medium_random))
