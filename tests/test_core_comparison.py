"""Tests for the library-comparison harness and analysis helpers."""

import numpy as np
import pytest

from repro.analysis import (
    coefficient_of_variation,
    distribution_summary,
    format_speedup_summary,
    format_table,
    geometric_mean,
    histogram,
    series_to_rows,
    speedup_summary,
)
from repro.core import DEFAULT_LIBRARIES, SMaTConfig, compare_libraries
from repro.gpu import A100_SXM4_40GB
from repro.matrices import uniform_random


@pytest.fixture
def problem(rng):
    A = uniform_random(768, 768, density=0.01, rng=rng)
    B = rng.normal(size=(768, 8)).astype(np.float32)
    return A, B


class TestCompareLibraries:
    def test_default_libraries_all_run(self, problem):
        A, B = problem
        results = compare_libraries(A, B)
        assert [r.library for r in results] == ["SMaT", "DASP", "Magicube", "cuSPARSE"]
        assert all(r.supported for r in results)
        assert all(r.correct for r in results)

    def test_includes_cublas_when_requested(self, problem):
        A, B = problem
        results = compare_libraries(A, B, libraries=["smat", "cublas"])
        assert results[1].library == "cuBLAS"
        assert results[1].correct

    def test_unsupported_library_reported_not_raised(self, problem):
        A, B = problem
        tiny_gpu = A100_SXM4_40GB.with_overrides(hbm_capacity_gib=0.0001)
        results = compare_libraries(
            A, B, libraries=["magicube"], config=SMaTConfig(arch=tiny_gpu)
        )
        assert not results[0].supported
        assert results[0].error is not None
        assert results[0].time_ms == float("inf")

    def test_speedup_over(self, problem):
        A, B = problem
        smat, dasp = compare_libraries(A, B, libraries=["smat", "dasp"])
        assert smat.speedup_over(dasp) == pytest.approx(dasp.time_ms / smat.time_ms)

    def test_smat_meta_contains_block_reduction(self, problem):
        A, B = problem
        (smat,) = compare_libraries(A, B, libraries=["smat"])
        assert "block_reduction" in smat.meta

    def test_correctness_check_can_be_skipped(self, problem):
        A, B = problem
        results = compare_libraries(A, B, libraries=["smat"], check_correctness=False)
        assert results[0].correct is None

    def test_default_library_tuple_matches_paper(self):
        assert tuple(DEFAULT_LIBRARIES) == ("smat", "dasp", "magicube", "cusparse")


class TestStats:
    def test_geometric_mean(self):
        assert geometric_mean([1.0, 4.0]) == pytest.approx(2.0)
        assert geometric_mean([2.0, 2.0, 2.0]) == pytest.approx(2.0)
        assert np.isnan(geometric_mean([]))

    def test_geometric_mean_ignores_invalid(self):
        assert geometric_mean([4.0, 0.0, float("nan"), 1.0]) == pytest.approx(2.0)

    def test_coefficient_of_variation(self):
        assert coefficient_of_variation([5.0, 5.0, 5.0]) == 0.0
        assert coefficient_of_variation([1.0, 3.0]) == pytest.approx(0.5)

    def test_speedup_summary(self):
        out = speedup_summary([10.0, 10.0], [1.0, 5.0])
        assert out["max"] == pytest.approx(10.0)
        assert out["min"] == pytest.approx(2.0)
        assert out["geomean"] == pytest.approx(np.sqrt(20.0))

    def test_speedup_summary_shape_mismatch(self):
        with pytest.raises(ValueError):
            speedup_summary([1.0], [1.0, 2.0])

    def test_distribution_summary(self):
        s = distribution_summary([1.0, 2.0, 3.0, 4.0])
        assert s.mean == pytest.approx(2.5)
        assert s.total == 10.0
        assert s.count == 4
        assert s.maximum == 4.0

    def test_distribution_summary_empty(self):
        assert distribution_summary([]).count == 0

    def test_histogram_linear_and_log(self):
        counts, edges = histogram([1, 2, 3, 100], bins=5)
        assert counts.sum() == 4
        counts_log, edges_log = histogram([1, 2, 3, 100], bins=5, log=True)
        assert counts_log.sum() == 4
        assert edges_log[0] > 0


class TestReportFormatting:
    def test_format_table_alignment(self):
        rows = [{"name": "a", "value": 1.23456}, {"name": "bb", "value": 7.0}]
        text = format_table(rows, title="demo")
        lines = text.splitlines()
        assert lines[0] == "demo"
        assert "name" in lines[1] and "value" in lines[1]
        assert len(lines) == 5

    def test_format_table_empty(self):
        assert "(no data)" in format_table([])

    def test_format_table_handles_nan_and_inf(self):
        text = format_table([{"x": float("nan"), "y": float("inf")}])
        assert "n/a" in text and "inf" in text

    def test_series_to_rows(self):
        rows = series_to_rows("N", [1, 2], {"SMaT": [0.1, 0.2], "DASP": [0.3, 0.4]})
        assert rows[0] == {"N": 1, "SMaT": 0.1, "DASP": 0.3}
        assert rows[1]["DASP"] == 0.4

    def test_format_speedup_summary(self):
        smat = {"m1": 1.0, "m2": 2.0}
        baselines = {"cuSPARSE": {"m1": 10.0, "m2": 10.0}, "DASP": {"m1": 2.0}}
        text = format_speedup_summary(smat, baselines)
        assert "cuSPARSE" in text and "DASP" in text
        assert "geomean_speedup" in text
