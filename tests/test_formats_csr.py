"""Unit tests for the CSR format (the paper's input format)."""

import numpy as np
import pytest

from repro.formats import COOMatrix, CSRMatrix


class TestConstruction:
    def test_from_dense_roundtrip(self, small_dense):
        csr = CSRMatrix.from_dense(small_dense)
        np.testing.assert_allclose(csr.to_dense(), small_dense)

    def test_from_coo(self, small_dense):
        coo = COOMatrix.from_dense(small_dense)
        csr = CSRMatrix.from_coo(coo)
        np.testing.assert_allclose(csr.to_dense(), small_dense)

    def test_scipy_roundtrip(self, small_dense):
        sp = pytest.importorskip("scipy.sparse")
        csr = CSRMatrix.from_scipy(sp.csr_matrix(small_dense))
        np.testing.assert_allclose(csr.to_dense(), small_dense)
        back = csr.to_scipy()
        np.testing.assert_allclose(back.toarray(), small_dense)

    def test_empty(self):
        csr = CSRMatrix.empty((4, 6))
        assert csr.nnz == 0
        assert csr.to_dense().shape == (4, 6)

    def test_invalid_rowptr_length(self):
        with pytest.raises(ValueError, match="rowptr"):
            CSRMatrix([0, 1], [0], [1.0], (3, 3))

    def test_rowptr_must_be_monotone(self):
        with pytest.raises(ValueError):
            CSRMatrix([0, 2, 1, 2], [0, 1], [1.0, 2.0], (3, 3))

    def test_rowptr_must_end_at_nnz(self):
        with pytest.raises(ValueError):
            CSRMatrix([0, 1, 1, 3], [0, 1], [1.0, 2.0], (3, 3))

    def test_column_bounds_checked(self):
        with pytest.raises(ValueError):
            CSRMatrix([0, 1, 2, 2], [0, 7], [1.0, 2.0], (3, 3))

    def test_unsorted_columns_are_sorted(self):
        csr = CSRMatrix([0, 3, 3], [2, 0, 1], [3.0, 1.0, 2.0], (2, 3))
        assert list(csr.row_indices(0)) == [0, 1, 2]
        assert list(csr.row_values(0)) == [1.0, 2.0, 3.0]


class TestStatistics:
    def test_row_nnz(self, small_dense):
        csr = CSRMatrix.from_dense(small_dense)
        np.testing.assert_array_equal(
            csr.row_nnz(), np.count_nonzero(small_dense, axis=1)
        )

    def test_col_nnz(self, small_dense):
        csr = CSRMatrix.from_dense(small_dense)
        np.testing.assert_array_equal(
            csr.col_nnz(), np.count_nonzero(small_dense, axis=0)
        )

    def test_bandwidth_diagonal(self):
        csr = CSRMatrix.from_dense(np.eye(5, dtype=np.float32))
        assert csr.bandwidth() == 0

    def test_bandwidth_offdiagonal(self):
        dense = np.zeros((6, 6), dtype=np.float32)
        dense[0, 4] = 1.0
        dense[5, 5] = 2.0
        assert CSRMatrix.from_dense(dense).bandwidth() == 4

    def test_bandwidth_empty(self):
        assert CSRMatrix.empty((4, 4)).bandwidth() == 0

    def test_rows_iter_skips_empty_rows(self):
        dense = np.zeros((4, 4), dtype=np.float32)
        dense[1, 2] = 1.0
        dense[3, 0] = 2.0
        csr = CSRMatrix.from_dense(dense)
        seen = [row for row, _, _ in csr.rows_iter()]
        assert seen == [1, 3]


class TestOperations:
    def test_spmm_matches_dense(self, small_dense, rng):
        csr = CSRMatrix.from_dense(small_dense)
        B = rng.normal(size=(small_dense.shape[1], 9)).astype(np.float32)
        np.testing.assert_allclose(csr.spmm(B), small_dense @ B, rtol=1e-5, atol=1e-5)

    def test_spmv(self, small_dense, rng):
        csr = CSRMatrix.from_dense(small_dense)
        x = rng.normal(size=small_dense.shape[1]).astype(np.float32)
        np.testing.assert_allclose(csr.spmv(x), small_dense @ x, rtol=1e-5, atol=1e-5)

    def test_spmm_accepts_vector(self, small_dense, rng):
        csr = CSRMatrix.from_dense(small_dense)
        x = rng.normal(size=small_dense.shape[1]).astype(np.float32)
        out = csr.spmm(x)
        assert out.shape == (small_dense.shape[0], 1)

    def test_transpose(self, small_dense):
        csr = CSRMatrix.from_dense(small_dense)
        np.testing.assert_allclose(csr.transpose().to_dense(), small_dense.T)

    def test_to_coo_roundtrip(self, small_dense):
        csr = CSRMatrix.from_dense(small_dense)
        np.testing.assert_allclose(csr.to_coo().to_dense(), small_dense)

    def test_to_csc_roundtrip(self, small_dense):
        csr = CSRMatrix.from_dense(small_dense)
        np.testing.assert_allclose(csr.to_csc().to_dense(), small_dense)


class TestPermutations:
    def test_permute_rows_matches_dense(self, small_dense):
        csr = CSRMatrix.from_dense(small_dense)
        perm = np.random.default_rng(0).permutation(small_dense.shape[0])
        np.testing.assert_allclose(csr.permute_rows(perm).to_dense(), small_dense[perm])

    def test_permute_cols_matches_dense(self, small_dense):
        csr = CSRMatrix.from_dense(small_dense)
        perm = np.random.default_rng(1).permutation(small_dense.shape[1])
        np.testing.assert_allclose(csr.permute_cols(perm).to_dense(), small_dense[:, perm])

    def test_permute_preserves_nnz(self, small_csr):
        perm = np.random.default_rng(2).permutation(small_csr.nrows)
        assert small_csr.permute_rows(perm).nnz == small_csr.nnz

    def test_permute_rows_identity(self, small_dense):
        csr = CSRMatrix.from_dense(small_dense)
        ident = np.arange(small_dense.shape[0])
        np.testing.assert_allclose(csr.permute_rows(ident).to_dense(), small_dense)

    def test_permute_rows_rejects_non_permutation(self, small_csr):
        bad = np.zeros(small_csr.nrows, dtype=np.int64)
        with pytest.raises(ValueError):
            small_csr.permute_rows(bad)

    def test_permute_rows_rejects_wrong_length(self, small_csr):
        with pytest.raises(ValueError):
            small_csr.permute_rows(np.arange(small_csr.nrows + 1))

    def test_permute_cols_rejects_non_permutation(self, small_csr):
        with pytest.raises(ValueError):
            small_csr.permute_cols(np.zeros(small_csr.ncols, dtype=np.int64))

    def test_extract_rows(self, small_dense):
        csr = CSRMatrix.from_dense(small_dense)
        rows = np.array([3, 0, 10])
        sub = csr.extract_rows(rows)
        np.testing.assert_allclose(sub.to_dense(), small_dense[rows])

    def test_extract_cols_ordered(self, small_dense):
        csr = CSRMatrix.from_dense(small_dense)
        cols = np.array([1, 4, 7])
        sub = csr.extract_cols(cols)
        assert sub.shape == (small_dense.shape[0], 3)
        np.testing.assert_allclose(sub.to_dense(), small_dense[:, cols])

    def test_extract_cols_reordered_selection(self, small_dense):
        csr = CSRMatrix.from_dense(small_dense)
        cols = np.array([10, 2, 7, 0])
        np.testing.assert_allclose(csr.extract_cols(cols).to_dense(), small_dense[:, cols])

    def test_extract_cols_empty_selection(self, small_csr):
        sub = small_csr.extract_cols(np.array([], dtype=np.int64))
        assert sub.shape == (small_csr.nrows, 0)
        assert sub.nnz == 0

    def test_extract_cols_rejects_out_of_bounds(self, small_csr):
        with pytest.raises(ValueError):
            small_csr.extract_cols(np.array([small_csr.ncols]))
        with pytest.raises(ValueError):
            small_csr.extract_cols(np.array([-1]))

    def test_extract_cols_rejects_duplicates(self, small_csr):
        with pytest.raises(ValueError, match="duplicate"):
            small_csr.extract_cols(np.array([1, 1]))

    def test_extract_cols_rejects_2d(self, small_csr):
        with pytest.raises(ValueError):
            small_csr.extract_cols(np.array([[1, 2]]))

    def test_submatrix_matches_dense_slicing(self, small_dense):
        csr = CSRMatrix.from_dense(small_dense)
        rows = np.array([5, 1, 8, 2])
        cols = np.array([9, 0, 3])
        sub = csr.submatrix(rows, cols)
        np.testing.assert_allclose(sub.to_dense(), small_dense[np.ix_(rows, cols)])

    def test_permutation_roundtrip(self, small_dense):
        csr = CSRMatrix.from_dense(small_dense)
        perm = np.random.default_rng(5).permutation(small_dense.shape[0])
        inverse = np.empty_like(perm)
        inverse[perm] = np.arange(perm.size)
        roundtrip = csr.permute_rows(perm).permute_rows(inverse)
        np.testing.assert_allclose(roundtrip.to_dense(), small_dense)
