"""Property-based tests: every kernel computes the correct product and the
cost model produces physically sensible timings for arbitrary inputs."""

import numpy as np
from hypothesis import given, settings, strategies as st

from repro.kernels import (
    CublasDenseKernel,
    CusparseCSRKernel,
    DASPKernel,
    MagicubeKernel,
    SMaTKernel,
)
from repro.matrices import uniform_random

KERNELS = [SMaTKernel, CusparseCSRKernel, DASPKernel, MagicubeKernel, CublasDenseKernel]


matrix_params = st.tuples(
    st.integers(min_value=8, max_value=200),   # rows
    st.integers(min_value=8, max_value=200),   # cols
    st.floats(min_value=0.0, max_value=0.2),   # density
    st.integers(min_value=1, max_value=20),    # N
    st.integers(min_value=0, max_value=2**31 - 1),
)


@given(params=matrix_params)
@settings(max_examples=25, deadline=None)
def test_all_kernels_compute_correct_product(params):
    rows, cols, density, n, seed = params
    rng = np.random.default_rng(seed)
    A = uniform_random(rows, cols, density=density, rng=rng)
    B = rng.normal(size=(cols, n)).astype(np.float32)
    reference = A.spmm(B)
    for cls in KERNELS:
        result = cls().multiply(A, B)
        np.testing.assert_allclose(
            result.C, reference, rtol=1e-3, atol=1e-3,
            err_msg=f"{cls.__name__} produced a wrong result",
        )


@given(params=matrix_params)
@settings(max_examples=25, deadline=None)
def test_all_kernels_produce_sane_timings(params):
    rows, cols, density, n, seed = params
    rng = np.random.default_rng(seed)
    A = uniform_random(rows, cols, density=density, rng=rng)
    B = rng.normal(size=(cols, n)).astype(np.float32)
    for cls in KERNELS:
        result = cls().multiply(A, B)
        # timing must be positive, finite, and at least the launch overhead
        assert np.isfinite(result.timing.time_s)
        assert result.timing.time_s >= 1e-6
        # GFLOP/s never exceeds the INT8 tensor-core peak of the device
        assert result.gflops <= 624_000
        # counters are non-negative
        assert result.counters.bytes_global >= 0
        assert result.counters.useful_flops >= 0


@given(
    n=st.integers(min_value=32, max_value=256),
    density=st.floats(min_value=0.001, max_value=0.1),
    seed=st.integers(0, 2**16),
)
@settings(max_examples=20, deadline=None)
def test_smat_timing_monotone_in_matrix_size(n, density, seed):
    """More work (a second copy of the matrix's nnz) never makes the
    simulated kernel faster."""
    rng = np.random.default_rng(seed)
    A_small = uniform_random(n, n, density=density, rng=rng)
    A_large = uniform_random(2 * n, 2 * n, density=density, rng=rng)
    B_small = rng.normal(size=(n, 8)).astype(np.float32)
    B_large = rng.normal(size=(2 * n, 8)).astype(np.float32)
    t_small = SMaTKernel().multiply(A_small, B_small).timing.time_s
    t_large = SMaTKernel().multiply(A_large, B_large).timing.time_s
    assert t_large >= t_small * 0.8
