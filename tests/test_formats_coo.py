"""Unit tests for the COO format."""

import numpy as np
import pytest

from repro.formats import COOMatrix


class TestConstruction:
    def test_from_dense_roundtrip(self, small_dense):
        coo = COOMatrix.from_dense(small_dense)
        np.testing.assert_allclose(coo.to_dense(), small_dense)

    def test_nnz_matches_dense(self, small_dense):
        coo = COOMatrix.from_dense(small_dense)
        assert coo.nnz == np.count_nonzero(small_dense)

    def test_shape_and_dims(self, small_dense):
        coo = COOMatrix.from_dense(small_dense)
        assert coo.shape == small_dense.shape
        assert coo.nrows == small_dense.shape[0]
        assert coo.ncols == small_dense.shape[1]

    def test_empty_matrix(self):
        coo = COOMatrix.empty((5, 7))
        assert coo.nnz == 0
        assert coo.to_dense().shape == (5, 7)
        assert not coo.to_dense().any()

    def test_explicit_entries(self):
        coo = COOMatrix([0, 1, 2], [2, 0, 1], [1.0, 2.0, 3.0], (3, 3))
        dense = coo.to_dense()
        assert dense[0, 2] == 1.0
        assert dense[1, 0] == 2.0
        assert dense[2, 1] == 3.0

    def test_duplicates_are_summed(self):
        coo = COOMatrix([0, 0, 1], [1, 1, 0], [1.0, 2.0, 5.0], (2, 2))
        assert coo.nnz == 2
        assert coo.to_dense()[0, 1] == pytest.approx(3.0)

    def test_duplicates_rejected_when_requested(self):
        with pytest.raises(ValueError, match="duplicate"):
            COOMatrix([0, 0], [1, 1], [1.0, 2.0], (2, 2), sum_duplicates=False)

    def test_out_of_bounds_rejected(self):
        with pytest.raises(ValueError):
            COOMatrix([0, 5], [0, 0], [1.0, 1.0], (3, 3))

    def test_negative_indices_rejected(self):
        with pytest.raises(ValueError):
            COOMatrix([0, -1], [0, 0], [1.0, 1.0], (3, 3))

    def test_mismatched_arrays_rejected(self):
        with pytest.raises(ValueError):
            COOMatrix([0, 1], [0], [1.0, 2.0], (3, 3))

    def test_canonical_ordering(self):
        coo = COOMatrix([2, 0, 1], [0, 1, 2], [3.0, 1.0, 2.0], (3, 3))
        assert list(coo.row) == [0, 1, 2]
        assert list(coo.col) == [1, 2, 0]

    def test_density_and_sparsity(self):
        coo = COOMatrix([0], [0], [1.0], (10, 10))
        assert coo.density == pytest.approx(0.01)
        assert coo.sparsity == pytest.approx(0.99)


class TestOperations:
    def test_spmm_matches_dense(self, small_dense, rng):
        coo = COOMatrix.from_dense(small_dense)
        B = rng.normal(size=(small_dense.shape[1], 5)).astype(np.float32)
        np.testing.assert_allclose(coo.spmm(B), small_dense @ B, rtol=1e-5, atol=1e-5)

    def test_spmv_matches_dense(self, small_dense, rng):
        coo = COOMatrix.from_dense(small_dense)
        x = rng.normal(size=small_dense.shape[1]).astype(np.float32)
        np.testing.assert_allclose(coo.spmv(x), small_dense @ x, rtol=1e-5, atol=1e-5)

    def test_spmm_dimension_mismatch(self, small_coo):
        with pytest.raises(ValueError, match="dimension mismatch"):
            small_coo.spmm(np.zeros((small_coo.ncols + 1, 3)))

    def test_transpose(self, small_dense):
        coo = COOMatrix.from_dense(small_dense)
        np.testing.assert_allclose(coo.transpose().to_dense(), small_dense.T)

    def test_permute_rows(self, small_dense):
        coo = COOMatrix.from_dense(small_dense)
        perm = np.random.default_rng(3).permutation(small_dense.shape[0])
        permuted = coo.permute(row_perm=perm)
        np.testing.assert_allclose(permuted.to_dense(), small_dense[perm])

    def test_permute_cols(self, small_dense):
        coo = COOMatrix.from_dense(small_dense)
        perm = np.random.default_rng(4).permutation(small_dense.shape[1])
        permuted = coo.permute(col_perm=perm)
        np.testing.assert_allclose(permuted.to_dense(), small_dense[:, perm])

    def test_memory_footprint_positive(self, small_coo):
        assert small_coo.memory_footprint_bytes() > 0

    def test_to_csr_roundtrip(self, small_dense):
        coo = COOMatrix.from_dense(small_dense)
        np.testing.assert_allclose(coo.to_csr().to_dense(), small_dense)

    def test_to_csc_roundtrip(self, small_dense):
        coo = COOMatrix.from_dense(small_dense)
        np.testing.assert_allclose(coo.to_csc().to_dense(), small_dense)

    def test_from_dense_tolerance(self):
        dense = np.array([[1e-8, 1.0], [0.5, 1e-9]], dtype=np.float64)
        coo = COOMatrix.from_dense(dense, tol=1e-6)
        assert coo.nnz == 2
