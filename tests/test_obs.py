"""Unit tests of the observability package (``repro.obs``).

Covers the tracer lifecycle (nesting, sampling, the disabled no-op fast
path, cross-process ingest), the metrics registry (counters, gauges,
histograms with numpy-exact percentiles), the Prometheus text renderer
and its strict parser, and the Chrome trace-event exporter.
"""

import json
import pickle
import threading

import numpy as np
import pytest

from repro.core.policy import ExecutionPolicy
from repro.obs import (
    DEFAULT_LATENCY_BUCKETS_MS,
    Histogram,
    MetricsRegistry,
    ObservabilityConfig,
    Span,
    SpanContext,
    Tracer,
    chrome_trace,
    exponential_buckets,
    parse_prometheus,
    span_tree,
    validate_chrome_trace,
    write_chrome_trace,
)


class TestTracer:
    def test_nesting_and_parentage(self):
        t = Tracer()
        with t.span("outer") as outer:
            with t.span("inner") as inner:
                assert inner.parent_id == outer.span_id
                assert inner.trace_id == outer.trace_id
        spans = t.snapshot()
        assert [s.name for s in spans] == ["inner", "outer"]
        assert t.open_count == 0

    def test_attrs_status_and_timing(self):
        t = Tracer()
        with t.span("work", a=1) as h:
            h.set(b="two")
        (span,) = t.snapshot()
        assert span.attrs == {"a": 1, "b": "two"}
        assert span.status == "ok"
        assert span.wall_ms >= 0.0 and span.cpu_ms >= 0.0

    def test_exception_marks_error_and_closes(self):
        t = Tracer()
        with pytest.raises(RuntimeError):
            with t.span("bad"):
                raise RuntimeError("boom")
        (span,) = t.snapshot()
        assert span.status == "error"
        assert "boom" in span.error
        assert t.open_count == 0

    def test_disabled_tracer_is_a_shared_noop(self):
        t = Tracer(enabled=False)
        # provable no-op fast path: every span() call returns the SAME
        # stateless handle object -- no allocation, no bookkeeping
        assert t.span("a") is t.span("b")
        with t.span("a") as h:
            h.set(x=1)
            h.mark_error("ignored")
        assert t.snapshot() == []
        assert t.current_context() is None

    def test_from_config(self):
        assert Tracer.from_config(None).enabled is False
        assert Tracer.from_config(ObservabilityConfig()).enabled is False
        t = Tracer.from_config(ObservabilityConfig(tracing=True, sample_rate=0.5))
        assert t.enabled is True and t.sample_rate == 0.5

    def test_sampling_decides_per_root(self):
        t = Tracer(sample_rate=0.5)
        for _ in range(4):
            with t.span("root"):
                with t.span("child"):
                    pass
        spans = t.snapshot()
        # stride 2: every other root recorded, children follow the root
        assert sum(1 for s in spans if s.name == "root") == 2
        assert sum(1 for s in spans if s.name == "child") == 2

    def test_explicit_parent_tuple_links_across_threads(self):
        t = Tracer()
        captured = {}

        def worker(parent):
            with t.span("child", parent=parent) as h:
                captured["ctx"] = h.trace_id

        with t.span("root") as root:
            ctx = t.current_context()
            th = threading.Thread(target=worker, args=(tuple(ctx),))
            th.start()
            th.join()
            assert captured["ctx"] == root.trace_id

    def test_span_context_pickles(self):
        ctx = SpanContext("a" * 16, "b" * 8)
        clone = pickle.loads(pickle.dumps(ctx))
        assert clone == ctx
        assert clone.trace_id == "a" * 16 and clone.span_id == "b" * 8

    def test_ingest_round_trip(self):
        worker = Tracer()
        with worker.span("remote", shard=3):
            pass
        shipped = [s.to_dict() for s in worker.drain()]
        host = Tracer()
        assert host.ingest(shipped) == 1
        (span,) = host.snapshot()
        assert span.name == "remote" and span.attrs["shard"] == 3

    def test_max_spans_bounds_memory_and_counts_drops(self):
        t = Tracer(max_spans=2)
        for i in range(5):
            with t.span(f"s{i}"):
                pass
        assert len(t.snapshot()) == 2
        assert t.dropped == 3

    def test_config_validation(self):
        with pytest.raises(ValueError):
            ObservabilityConfig(tracing=True, sample_rate=0.0)
        with pytest.raises(ValueError):
            ObservabilityConfig(tracing=True, sample_rate=1.5)
        with pytest.raises(ValueError):
            ObservabilityConfig(max_spans=0)
        with pytest.raises(TypeError):
            ObservabilityConfig(tracing="yes")

    def test_policy_carries_obs_and_stays_hashable(self):
        policy = ExecutionPolicy(obs=ObservabilityConfig(tracing=True))
        assert policy.obs.tracing is True
        hash(policy)
        assert pickle.loads(pickle.dumps(policy)).obs == policy.obs
        with pytest.raises(TypeError):
            ExecutionPolicy(obs="tracing")


class TestMetrics:
    def test_counter_labels_and_validation(self):
        reg = MetricsRegistry()
        c = reg.counter("reqs_total", "requests", labels=("endpoint",))
        c.inc(endpoint="GET /x")
        c.inc(2, endpoint="GET /x")
        assert c.value(endpoint="GET /x") == 3
        assert c.total() == 3
        with pytest.raises(ValueError):
            c.inc(-1, endpoint="GET /x")
        with pytest.raises(ValueError):
            c.inc(route="GET /x")  # wrong label set

    def test_registry_kind_mismatch_raises(self):
        reg = MetricsRegistry()
        reg.counter("m")
        with pytest.raises(ValueError, match="already registered"):
            reg.gauge("m")

    def test_histogram_percentiles_match_numpy(self):
        rng = np.random.default_rng(7)
        samples = rng.exponential(scale=5.0, size=500)
        h = Histogram("lat_ms", window=1024)
        for v in samples:
            h.observe(v)
        for q in (50, 90, 99):
            assert h.percentile(q) == pytest.approx(
                float(np.percentile(samples, q)), abs=1e-9
            )
        assert h.mean() == pytest.approx(float(samples.mean()))
        assert h.count == 500

    def test_histogram_window_vs_lifetime(self):
        h = Histogram("lat_ms", window=4)
        for v in (1, 2, 3, 4, 100, 200, 300, 400):
            h.observe(v)
        assert h.count == 8  # lifetime
        assert h.percentile(50) == pytest.approx(250.0)  # window only

    def test_exponential_buckets(self):
        b = exponential_buckets(1.0, 2.0, 4)
        assert b == (1.0, 2.0, 4.0, 8.0)
        assert len(DEFAULT_LATENCY_BUCKETS_MS) == 18

    def test_prometheus_render_parses_and_round_trips(self):
        reg = MetricsRegistry()
        reg.counter("hits_total", "cache hits", labels=("tier",)).inc(tier="l1")
        reg.gauge("depth", "queue depth").set(3)
        h = reg.histogram("wall_ms", "latency", buckets=(1.0, 10.0))
        h.observe(0.5)
        h.observe(5.0)
        text = reg.render_prometheus()
        samples = parse_prometheus(text)
        by_name = {}
        for name, labels, value in samples:
            by_name.setdefault(name, []).append((labels, value))
        assert by_name["hits_total"] == [({"tier": "l1"}, 1.0)]
        assert by_name["depth"] == [({}, 3.0)]
        buckets = dict(
            (labels["le"], value) for labels, value in by_name["wall_ms_bucket"]
        )
        assert buckets == {"1": 1.0, "10": 2.0, "+Inf": 2.0}
        assert by_name["wall_ms_count"] == [({}, 2.0)]

    def test_prometheus_parser_rejects_malformed(self):
        for bad in (
            "metric{le=1} 2",  # unquoted label value
            "1metric 2",  # bad metric name
            "metric",  # missing value
            "metric nan-ish",  # bad value
            "# BOGUS metric help",  # bad comment kind
        ):
            with pytest.raises(ValueError):
                parse_prometheus(bad)

    def test_label_escaping(self):
        reg = MetricsRegistry()
        reg.counter("c_total", labels=("path",)).inc(path='we"ird\\pa\nth')
        samples = parse_prometheus(reg.render_prometheus())
        (entry,) = [s for s in samples if s[0] == "c_total"]
        assert entry[1]["path"] == 'we"ird\\pa\nth'


class TestExport:
    def _spans(self):
        t = Tracer()
        with t.span("root", phase="demo"):
            with t.span("leaf"):
                pass
        return t.snapshot()

    def test_chrome_trace_validates(self):
        doc = chrome_trace(self._spans())
        assert validate_chrome_trace(doc) == 2
        events = [e for e in doc["traceEvents"] if e["ph"] == "X"]
        assert {e["name"] for e in events} == {"root", "leaf"}

    def test_validate_rejects_malformed(self):
        with pytest.raises(ValueError):
            validate_chrome_trace({"traceEvents": [{"ph": "X"}]})
        with pytest.raises(ValueError):
            validate_chrome_trace([])

    def test_write_chrome_trace(self, tmp_path):
        path = tmp_path / "trace.json"
        write_chrome_trace(self._spans(), str(path))
        doc = json.loads(path.read_text())
        assert validate_chrome_trace(doc) == 2

    def test_span_tree_renders_nesting(self):
        text = span_tree(self._spans())
        lines = text.splitlines()
        assert any(line.startswith("root") for line in lines)
        assert any(line.startswith("  leaf") for line in lines)
        assert span_tree([]) == "(no spans recorded)"

    def test_from_dict_round_trip(self):
        (root, *_) = self._spans()
        clone = Span.from_dict(root.to_dict())
        assert clone.name == root.name
        assert clone.span_id == root.span_id
        assert clone.attrs == root.attrs
