"""Cross-process TuningCache writers must not lose each other's entries.

Regression test for the read-modify-write race: two processes that load
the same snapshot, each add their own key, and write back would -- before
the file lock -- have the second ``os.replace`` clobber the first
writer's entry.  Every entry written by every process must survive.
"""

import json
import multiprocessing

from repro.tuner import TuningCache

N_PROCS = 4
KEYS_PER_PROC = 6


def _writer(path, proc_index, start_event):
    """Hammer the shared cache file with this process's own keys."""
    start_event.wait(timeout=30)
    cache = TuningCache(path)
    for i in range(KEYS_PER_PROC):
        cache.put(f"proc{proc_index}:key{i}", {"proc": proc_index, "i": i})


def test_concurrent_process_writers_lose_nothing(tmp_path):
    path = tmp_path / "tuning_cache.json"
    ctx = multiprocessing.get_context("spawn")
    start = ctx.Event()
    procs = [
        ctx.Process(target=_writer, args=(str(path), p, start))
        for p in range(N_PROCS)
    ]
    for proc in procs:
        proc.start()
    start.set()  # release everyone at once to maximise interleaving
    for proc in procs:
        proc.join(timeout=60)
        assert proc.exitcode == 0

    cache = TuningCache(path)
    assert len(cache) == N_PROCS * KEYS_PER_PROC
    for p in range(N_PROCS):
        for i in range(KEYS_PER_PROC):
            assert cache.get(f"proc{p}:key{i}") == {"proc": p, "i": i}

    # the file itself must be valid JSON with the schema envelope
    payload = json.loads(path.read_text(encoding="utf-8"))
    assert payload["version"] == 1
    assert len(payload["entries"]) == N_PROCS * KEYS_PER_PROC


def test_thread_writers_lose_nothing(tmp_path):
    """Same invariant inside one process (thread-lock path)."""
    import threading

    path = tmp_path / "tuning_cache.json"
    cache = TuningCache(path)
    barrier = threading.Barrier(4)

    def writer(t):
        barrier.wait(timeout=10)
        for i in range(KEYS_PER_PROC):
            cache.put(f"t{t}:k{i}", {"t": t, "i": i})

    threads = [threading.Thread(target=writer, args=(t,)) for t in range(4)]
    for th in threads:
        th.start()
    for th in threads:
        th.join(timeout=30)
    assert len(cache) == 4 * KEYS_PER_PROC
