"""Property-based tests (hypothesis) on the storage formats.

Invariants exercised:

* every format round-trips through dense without changing values,
* SpMM agrees across all formats and with the NumPy reference,
* BCSR block counts always satisfy Eq. 2 of the paper,
* permutations preserve nnz and are invertible.
"""

import numpy as np
from hypothesis import given, settings, strategies as st
from hypothesis.extra.numpy import arrays

from repro.formats import BCSRMatrix, COOMatrix, CSCMatrix, CSRMatrix, SRBCRSMatrix


def sparse_dense_arrays(max_rows=24, max_cols=24):
    """Strategy producing small dense arrays with many zeros."""
    shapes = st.tuples(
        st.integers(min_value=1, max_value=max_rows),
        st.integers(min_value=1, max_value=max_cols),
    )
    return shapes.flatmap(
        lambda s: arrays(
            dtype=np.float32,
            shape=s,
            elements=st.sampled_from([0.0, 0.0, 0.0, 1.0, -2.0, 0.5, 3.25]),
        )
    )


block_shapes = st.sampled_from([(2, 2), (4, 2), (16, 8), (3, 5), (8, 8)])


@given(dense=sparse_dense_arrays())
@settings(max_examples=60, deadline=None)
def test_csr_roundtrip(dense):
    csr = CSRMatrix.from_dense(dense)
    np.testing.assert_array_equal(csr.to_dense(), dense)
    assert csr.nnz == np.count_nonzero(dense)


@given(dense=sparse_dense_arrays())
@settings(max_examples=60, deadline=None)
def test_coo_csc_roundtrip(dense):
    np.testing.assert_array_equal(COOMatrix.from_dense(dense).to_dense(), dense)
    np.testing.assert_array_equal(CSCMatrix.from_dense(dense).to_dense(), dense)


@given(dense=sparse_dense_arrays(), block=block_shapes)
@settings(max_examples=60, deadline=None)
def test_bcsr_roundtrip_and_bounds(dense, block):
    bcsr = BCSRMatrix.from_dense(dense, block)
    np.testing.assert_array_equal(bcsr.to_dense(), dense)
    lower, upper = bcsr.block_count_bounds()
    assert lower <= bcsr.n_blocks <= upper
    assert bcsr.padding_zeros >= 0
    assert bcsr.stored_values == bcsr.n_blocks * block[0] * block[1]


@given(
    dense=sparse_dense_arrays(),
    v=st.sampled_from([1, 2, 4, 8]),
    stride=st.sampled_from([1, 2, 4]),
)
@settings(max_examples=60, deadline=None)
def test_srbcrs_roundtrip(dense, v, stride):
    sr = SRBCRSMatrix.from_csr(
        CSRMatrix.from_dense(dense), vector_length=v, stride=stride
    )
    np.testing.assert_array_equal(sr.to_dense(), dense)
    assert sr.nnz == np.count_nonzero(dense)
    per_panel = sr.vectors_per_panel()
    assert np.all(per_panel[per_panel > 0] % stride == 0)


@given(dense=sparse_dense_arrays(), block=block_shapes, n_cols=st.integers(1, 6))
@settings(max_examples=50, deadline=None)
def test_spmm_agreement_across_formats(dense, block, n_cols):
    rng = np.random.default_rng(0)
    B = rng.normal(size=(dense.shape[1], n_cols)).astype(np.float32)
    reference = dense.astype(np.float64) @ B.astype(np.float64)
    csr = CSRMatrix.from_dense(dense)
    candidates = [
        csr,
        csr.to_coo(),
        CSCMatrix.from_dense(dense),
        BCSRMatrix.from_dense(dense, block),
        SRBCRSMatrix.from_csr(csr, vector_length=4, stride=2),
    ]
    for matrix in candidates:
        np.testing.assert_allclose(matrix.spmm(B), reference, rtol=1e-4, atol=1e-4)


@given(dense=sparse_dense_arrays(), seed=st.integers(0, 2**16))
@settings(max_examples=50, deadline=None)
def test_row_permutation_is_invertible(dense, seed):
    csr = CSRMatrix.from_dense(dense)
    perm = np.random.default_rng(seed).permutation(csr.nrows)
    permuted = csr.permute_rows(perm)
    assert permuted.nnz == csr.nnz
    inverse = np.empty_like(perm)
    inverse[perm] = np.arange(perm.size)
    np.testing.assert_array_equal(permuted.permute_rows(inverse).to_dense(), dense)


@given(dense=sparse_dense_arrays(), seed=st.integers(0, 2**16))
@settings(max_examples=50, deadline=None)
def test_col_permutation_is_invertible(dense, seed):
    csr = CSRMatrix.from_dense(dense)
    perm = np.random.default_rng(seed).permutation(csr.ncols)
    permuted = csr.permute_cols(perm)
    assert permuted.nnz == csr.nnz
    inverse = np.empty_like(perm)
    inverse[perm] = np.arange(perm.size)
    np.testing.assert_array_equal(permuted.permute_cols(inverse).to_dense(), dense)


@given(dense=sparse_dense_arrays(), seed=st.integers(0, 2**16))
@settings(max_examples=50, deadline=None)
def test_extract_cols_matches_scipy_slicing(dense, seed):
    csr = CSRMatrix.from_dense(dense)
    rng = np.random.default_rng(seed)
    n_take = int(rng.integers(0, csr.ncols + 1))
    cols = rng.permutation(csr.ncols)[:n_take]
    sub = csr.extract_cols(cols)
    expected = csr.to_scipy()[:, cols].toarray()
    assert sub.shape == expected.shape
    np.testing.assert_array_equal(sub.to_dense(), expected)


@given(dense=sparse_dense_arrays(), seed=st.integers(0, 2**16))
@settings(max_examples=50, deadline=None)
def test_submatrix_matches_scipy_slicing(dense, seed):
    csr = CSRMatrix.from_dense(dense)
    rng = np.random.default_rng(seed)
    rows = rng.permutation(csr.nrows)[: int(rng.integers(1, csr.nrows + 1))]
    cols = rng.permutation(csr.ncols)[: int(rng.integers(1, csr.ncols + 1))]
    sub = csr.submatrix(rows, cols)
    expected = csr.to_scipy()[rows][:, cols].toarray()
    assert sub.shape == expected.shape
    np.testing.assert_array_equal(sub.to_dense(), expected)
