"""Backend-pluggable execution stack: any kernel through every layer.

The paper's comparative result (Figures 8-10) is that the winning SpMM
library depends on the matrix.  These tests cover the whole-stack
plumbing that makes the backend a first-class plan dimension: config
validation, plan building per backend, backend-aware plan-cache keys,
the engine's unsupported-kernel fallback, the tuner's backend axis, the
engine-routed comparison harness, per-shard heterogeneous backends, the
workload pass-through, and the strict ``get_kernel`` argument check.
"""

import numpy as np
import pytest

from repro.core import SMaTConfig, compare_libraries
from repro.core.plan import ExecutionPlan, config_signature, plan_key
from repro.engine import SpMMEngine
from repro.formats import COOMatrix
from repro.gpu import A100_SXM4_40GB
from repro.kernels import (
    KERNEL_REGISTRY,
    KernelUnsupportedError,
    get_kernel,
    kernel_info,
)
from repro.matrices import band_matrix, suitesparse, uniform_random
from repro.tuner import Tuner, backend_menu, candidate_space

BACKENDS = tuple(KERNEL_REGISTRY)


@pytest.fixture
def problem(rng):
    A = uniform_random(512, 512, density=0.02, rng=rng)
    B = rng.normal(size=(512, 8)).astype(np.float32)
    return A, B


@pytest.fixture
def tiny_arch():
    """A simulated device too small for Magicube/cuBLAS preprocessing."""
    return A100_SXM4_40GB.with_overrides(hbm_capacity_gib=0.0001)


def _dense_plus_sparse(rng, *, head=512, n=4096, density=0.004):
    """Block-diagonal matrix: dense head block, sparse tail (the shape
    where per-shard tuning should mix backends)."""
    d = np.argwhere(np.ones((head, head), dtype=bool))
    sp = uniform_random(n - head, n - head, density=density, rng=rng).to_coo()
    rows = np.concatenate([d[:, 0], sp.row + head])
    cols = np.concatenate([d[:, 1], sp.col + head])
    vals = np.concatenate([rng.normal(size=len(d)).astype(np.float32), sp.val])
    return COOMatrix(rows, cols, vals, (n, n)).to_csr()


class TestConfigBackend:
    def test_default_is_smat(self):
        assert SMaTConfig().resolved_kernel() == "smat"

    def test_case_insensitive(self):
        assert SMaTConfig(kernel="CuBLAS").resolved_kernel() == "cublas"

    def test_unknown_backend_rejected(self):
        with pytest.raises(ValueError, match="unknown kernel backend"):
            SMaTConfig(kernel="cudnn").validate()

    def test_auto_is_valid(self):
        assert SMaTConfig(kernel="auto").validate().resolved_kernel() == "auto"


class TestPlanPerBackend:
    @pytest.mark.parametrize("backend", BACKENDS)
    def test_all_backends_allclose_to_reference(self, problem, backend):
        A, B = problem
        plan = ExecutionPlan.build(A, SMaTConfig(kernel=backend))
        C, report = plan.execute(B)
        np.testing.assert_allclose(C, A.spmm(B), atol=1e-2)
        assert report.backend == backend
        assert report.preprocessing.backend == backend
        assert report.simulated_ms > 0

    @pytest.mark.parametrize("backend", [b for b in BACKENDS if b != "smat"])
    def test_non_blocked_backends_skip_reordering(self, problem, backend):
        A, B = problem
        plan = ExecutionPlan.build(A, SMaTConfig(kernel=backend, reorder="jaccard"))
        # the BCSR-specific permutation never ran: identity, no stats
        assert not plan.report.applied
        assert plan.report.algorithm == "identity"
        assert plan.reorder_result is None
        np.testing.assert_array_equal(plan.row_perm, np.arange(A.nrows))

    def test_smat_still_reorders(self, problem):
        A, _ = problem
        plan = ExecutionPlan.build(A, SMaTConfig(kernel="smat", reorder="jaccard"))
        assert plan.report.backend == "smat"
        assert plan.reorder_result is not None

    def test_bcsr_guarded_for_non_blocked(self, problem):
        A, _ = problem
        plan = ExecutionPlan.build(A, SMaTConfig(kernel="cusparse"))
        with pytest.raises(AttributeError, match="no BCSR representation"):
            plan.bcsr

    def test_backend_leads_config_signature(self):
        sig = config_signature(SMaTConfig(kernel="dasp"))
        assert sig[0] == "dasp"

    def test_backends_get_distinct_plan_keys(self, problem):
        A, _ = problem
        keys = {plan_key(A, SMaTConfig(kernel=b)) for b in BACKENDS}
        assert len(keys) == len(BACKENDS)

    def test_inert_smat_knobs_normalised_for_non_blocked_backends(self, problem):
        """Configs differing only in SMaT-only knobs share one plan key
        (a cuBLAS plan must not be densified twice because of --reorder)."""
        A, _ = problem
        base = plan_key(A, SMaTConfig(kernel="cublas"))
        assert plan_key(A, SMaTConfig(kernel="cublas", reorder="identity")) == base
        assert plan_key(A, SMaTConfig(kernel="cublas", block_shape=(8, 8))) == base
        assert plan_key(A, SMaTConfig(kernel="cublas", variant="BT")) == base
        # knobs that do change the prepared state still split the key
        assert plan_key(A, SMaTConfig(kernel="cublas", precision="tf32")) != base
        # ...and SMaT keeps its full signature
        assert plan_key(A, SMaTConfig(reorder="identity")) != plan_key(A, SMaTConfig())


class TestEngineBackends:
    def test_two_backends_coexist_in_one_cache(self, problem):
        """Acceptance: plans for two backends of one matrix do not evict
        each other by key collision."""
        A, B = problem
        with SpMMEngine(cache_size=4, max_workers=1) as engine:
            C1 = engine.multiply(A, B, config=SMaTConfig(kernel="smat"))
            C2 = engine.multiply(A, B, config=SMaTConfig(kernel="cublas"))
            stats = engine.cache_stats
            assert stats.size == 2 and stats.misses == 2 and stats.evictions == 0
            # both plans are cache hits now
            engine.multiply(A, B, config=SMaTConfig(kernel="smat"))
            engine.multiply(A, B, config=SMaTConfig(kernel="cublas"))
            assert engine.cache_stats.hits == 2
        np.testing.assert_allclose(C1, C2, atol=1e-2)

    def test_unsupported_backend_falls_back_to_smat(self, problem, tiny_arch):
        A, B = problem
        with SpMMEngine(cache_size=4, max_workers=1) as engine:
            C, report = engine.multiply(
                A, B, config=SMaTConfig(kernel="magicube", arch=tiny_arch), return_report=True
            )
            assert report.backend == "smat"
            assert report.preprocessing.fallback_from == "magicube"
            assert "Magicube" in report.preprocessing.fallback_error
            np.testing.assert_allclose(C, A.spmm(B), atol=1e-2)
            # the fallback plan is cached under the requested key: the
            # unsupported backend is not re-attempted per query
            _, report2 = engine.multiply(
                A, B, config=SMaTConfig(kernel="magicube", arch=tiny_arch), return_report=True
            )
            assert engine.cache_stats.hits == 1
            assert report2.preprocessing.fallback_from == "magicube"

    def test_batch_mixes_backends(self, problem):
        A, B = problem
        from repro.engine import BatchItem

        with SpMMEngine(cache_size=8, max_workers=2) as engine:
            outcome = engine.multiply_batch(
                [BatchItem(A, B, config=SMaTConfig(kernel=b)) for b in ("smat", "cusparse", "dasp")]
            )
        backends = [r.report.backend for r in outcome]
        assert backends == ["smat", "cusparse", "dasp"]
        for r in outcome:
            np.testing.assert_allclose(r.C, A.spmm(B), atol=1e-2)


class TestTunerBackendAxis:
    def test_backend_menu(self):
        assert backend_menu(SMaTConfig()) == ["smat"]
        menu = backend_menu(SMaTConfig(kernel="auto"))
        assert menu[0] == "smat" and set(menu) == set(BACKENDS)

    def test_auto_space_has_one_candidate_per_non_blocked_backend(self):
        space = candidate_space(SMaTConfig(kernel="auto"))
        by_kernel = {}
        for cand in space:
            by_kernel.setdefault(cand.kernel, []).append(cand)
        assert set(by_kernel) == set(BACKENDS)
        for backend, cands in by_kernel.items():
            if backend == "smat":
                assert len(cands) > 1  # block x reorder cross product
            else:
                assert len(cands) == 1  # block/reorder are inert

    def test_concrete_backend_space_degenerates(self):
        space = candidate_space(SMaTConfig(kernel="dasp"))
        assert [c.kernel for c in space] == ["dasp"]

    def test_unknown_kernels_rejected(self):
        with pytest.raises(ValueError, match="unknown kernel backend"):
            candidate_space(SMaTConfig(), kernels=["smat", "nope"])

    def test_auto_picks_non_smat_on_dense_band(self, rng):
        """Acceptance: the tuner rediscovers the Figure-9 crossover."""
        A = band_matrix(768, 700, rng=rng)
        result = Tuner(cache=False, max_measure=4).tune(A, SMaTConfig(kernel="auto"))
        assert result.best.candidate.kernel != "smat"
        assert result.tuned_vs_default > 1.0
        # the fixed-SMaT default was still measured (never-lose anchor)
        assert result.default.measured
        assert result.default.candidate.kernel == "smat"

    def test_winning_backend_persists_and_resolves(self, rng, tmp_path):
        A = band_matrix(768, 700, rng=rng)
        tuner = Tuner(cache=tmp_path / "tc.json", max_measure=4)
        base = SMaTConfig(kernel="auto")
        resolved = tuner.resolve(A, base)
        assert resolved.resolved_kernel() != "auto"
        entry = tuner.cache.get(tuner.key_for(A, base))
        assert entry is not None and entry["kernel"] == resolved.resolved_kernel()
        # a second resolve is a pure cache hit with the same winner
        assert tuner.resolve(A, base).resolved_kernel() == resolved.resolved_kernel()
        assert tuner.cache.stats.hits >= 1

    def test_unsupported_backend_skipped_not_fatal(self, problem, tiny_arch):
        """A forced-unsupported backend is skipped in the search."""
        from repro.tuner import clear_calibration_cache

        A, _ = problem
        clear_calibration_cache()
        try:
            result = Tuner(cache=False, kernels=("smat", "magicube"), max_measure=4).tune(
                A, SMaTConfig(kernel="auto", arch=tiny_arch)
            )
        finally:
            clear_calibration_cache()
        assert result.best.candidate.kernel == "smat"
        unsupported = [o for o in result.outcomes if o.unsupported]
        assert len(unsupported) == 1
        assert unsupported[0].candidate.kernel == "magicube"
        assert unsupported[0].error is not None

    def test_unsupported_at_measure_time_frees_budget_slot(self, rng):
        """A candidate that fails only on the *target* matrix (calibration
        samples fit, the matrix does not) must not consume one of the
        max_measure slots: the next-best viable candidate is measured."""
        from repro.tuner import clear_calibration_cache

        # calibration matrices (dim <= 768 dense ~ 1.2 MiB) fit; the
        # 2048^2 target (8.4 MiB densified) does not
        arch = A100_SXM4_40GB.with_overrides(hbm_capacity_gib=0.004)
        A = band_matrix(2048, 1800, rng=rng)
        clear_calibration_cache()
        try:
            result = Tuner(cache=False, max_measure=3).tune(
                A, SMaTConfig(kernel="auto", arch=arch)
            )
        finally:
            clear_calibration_cache()
        cublas = next(o for o in result.outcomes if o.candidate.kernel == "cublas")
        assert cublas.unsupported and not cublas.measured
        # the freed slot went to a supported candidate: full budget used
        assert result.n_measured == 3
        assert result.best.candidate.kernel != "cublas"

    def test_all_backends_unsupported_raises_kernel_error(self, problem, tiny_arch):
        from repro.tuner import clear_calibration_cache

        A, _ = problem
        clear_calibration_cache()
        try:
            with pytest.raises(KernelUnsupportedError, match="no tuning candidate"):
                Tuner(cache=False).tune(A, SMaTConfig(kernel="magicube", arch=tiny_arch))
        finally:
            clear_calibration_cache()

    def test_engine_tune_auto_selects_non_smat(self, rng, tmp_path):
        """Acceptance: SpMMEngine(tune=True) + kernel='auto' picks a
        non-SMaT backend on the dense band and stays correct."""
        A = band_matrix(768, 700, rng=rng)
        B = rng.normal(size=(768, 8)).astype(np.float32)
        with SpMMEngine(
            SMaTConfig(kernel="auto"), tune=True, tuning_cache=tmp_path / "tc.json"
        ) as engine:
            C, report = engine.multiply(A, B, return_report=True)
            assert report.backend != "smat"
            np.testing.assert_allclose(C, A.spmm(B), atol=1e-2)


class TestComparisonOnEngine:
    def test_default_libraries_unchanged(self, problem):
        A, B = problem
        results = compare_libraries(A, B)
        assert [r.library for r in results] == ["SMaT", "DASP", "Magicube", "cuSPARSE"]
        assert all(r.supported and r.correct for r in results)
        assert all("backend" in r.meta for r in results)

    def test_shared_engine_caches_all_libraries(self, problem):
        A, B = problem
        with SpMMEngine(cache_size=16, max_workers=1) as engine:
            compare_libraries(A, B, libraries=("smat", "cusparse", "cublas"), engine=engine)
            warm = compare_libraries(
                A, B, libraries=("smat", "cusparse", "cublas"), engine=engine
            )
            assert all(r.meta["cache_hit"] for r in warm)

    def test_unsupported_reported_via_fallback_record(self, problem, tiny_arch):
        A, B = problem
        results = compare_libraries(
            A, B, libraries=["magicube"], config=SMaTConfig(arch=tiny_arch)
        )
        assert not results[0].supported
        assert results[0].error is not None
        assert results[0].time_ms == float("inf")
        assert results[0].meta.get("fallback") == "smat"

    def test_auto_pseudo_library_row(self, rng):
        A = band_matrix(768, 700, rng=rng)
        B = rng.normal(size=(768, 8)).astype(np.float32)
        with SpMMEngine(SMaTConfig(), tune=True, tuning_cache=False) as engine:
            (row,) = compare_libraries(A, B, libraries=["auto"], engine=engine)
        assert row.supported and row.correct
        assert row.library.startswith("auto(")
        assert row.meta["backend"] in KERNEL_REGISTRY

    def test_tune_with_borrowed_engine_rejected(self, problem):
        A, B = problem
        with SpMMEngine() as engine:
            with pytest.raises(ValueError, match="tune=True"):
                compare_libraries(A, B, engine=engine, tune=True)


class TestShardedHeterogeneousBackends:
    def test_per_shard_backends_can_differ(self, rng, tmp_path):
        A = _dense_plus_sparse(rng)
        B = rng.normal(size=(A.ncols, 8)).astype(np.float32)
        with SpMMEngine(
            SMaTConfig(kernel="auto"),
            tune=True,
            tuning_cache=tmp_path / "tc.json",
            cache_size=32,
            max_workers=2,
        ) as engine:
            C, report = engine.multiply_sharded(A, B, grid=2, return_report=True)
        np.testing.assert_allclose(C, A.spmm(B), atol=1e-2)
        assert len(report.backends) >= 2, (
            f"expected a heterogeneous backend mix, got {report.backends}"
        )
        assert all("backend" in row for row in report.table())

    def test_sharded_unsupported_backend_falls_back_per_shard(self, rng, tiny_arch):
        """multiply_sharded absorbs KernelUnsupportedError exactly like
        multiply: the failing shard falls back to SMaT with a record."""
        A = uniform_random(512, 512, density=0.02, rng=rng)
        B = rng.normal(size=(512, 8)).astype(np.float32)
        config = SMaTConfig(kernel="magicube", arch=tiny_arch)
        with SpMMEngine(config, cache_size=16, max_workers=1) as engine:
            C, report = engine.multiply_sharded(A, B, grid=2, return_report=True)
            partition = engine.partition_for(A, 2, config=config)
            entries = engine.shard_plans_for(partition, config)
        np.testing.assert_allclose(C, A.spmm(B), atol=1e-2)
        assert report.backends == ["smat"]
        for entry in entries:
            assert entry.plan.report.fallback_from == "magicube"


class TestWorkloadKernelPassthrough:
    def test_pagerank_kernel_override(self, rng):
        from repro.matrices import scale_free_graph
        from repro.workloads import pagerank

        G = scale_free_graph(512, avg_degree=6.0, rng=rng)
        default = pagerank(G, tol=1e-10, max_iter=30)
        cusparse = pagerank(G, tol=1e-10, max_iter=30, kernel="cusparse")
        np.testing.assert_allclose(default.scores, cusparse.scores, atol=1e-5)
        assert default.report.kernel == "smat"
        assert cusparse.report.kernel == "cusparse"

    def test_operator_kernel_merges_into_config(self, problem):
        from repro.workloads import SpMMOperator

        A, B = problem
        with SpMMOperator(A, kernel="cublas") as op:
            C = op.matmul(B)
            assert op.kernel == "cublas"
            assert op.config.resolved_kernel() == "cublas"
        np.testing.assert_allclose(C, A.spmm(B), atol=1e-2)

    def test_smoother_kernel_passthrough_runs(self, rng):
        from repro.workloads import jacobi_smoother

        A, _ = (uniform_random(256, 256, density=0.03, rng=rng), None)
        coo = A.to_coo()
        rows = np.concatenate([coo.row, coo.col, np.arange(256)])
        cols = np.concatenate([coo.col, coo.row, np.arange(256)])
        vals = np.concatenate(
            [np.abs(coo.val), np.abs(coo.val), np.full(256, 50.0, dtype=np.float32)]
        )
        S = COOMatrix(rows, cols, vals, (256, 256)).to_csr()
        b = rng.normal(size=(256, 4)).astype(np.float32)
        result = jacobi_smoother(S, b, max_iter=5, kernel="dasp")
        assert result.report.kernel == "dasp"


class TestGetKernelStrictArgs:
    def test_rejects_unknown_kwarg_naming_backend(self):
        with pytest.raises(TypeError, match="'cusparse'.*variant"):
            get_kernel("cusparse", variant="CBT")

    def test_rejects_excess_positional(self):
        with pytest.raises(TypeError, match="'cublas'"):
            get_kernel("cublas", A100_SXM4_40GB, "fp16", "extra")

    def test_smat_accepts_its_own_kwargs(self):
        k = get_kernel("smat", block_shape=(8, 8), variant="BT")
        assert k.block_shape == (8, 8)

    def test_unknown_name_still_value_error(self):
        with pytest.raises(ValueError, match="unknown kernel"):
            get_kernel("nope")

    def test_kernel_info_rows(self):
        rows = kernel_info()
        assert {r["kernel"] for r in rows} == set(BACKENDS)
        for row in rows:
            assert row["library"] and row["format"] and row["cost_model"]
            assert isinstance(row["reordered"], bool)
        assert next(r for r in rows if r["kernel"] == "smat")["reordered"] is True


class TestFingerprintReprepare:
    """Satellite: SpMMKernel.multiply re-prepares on content, not identity."""

    def test_equal_matrix_loaded_twice_reuses_preparation(self, rng):
        A1 = uniform_random(256, 256, density=0.02, rng=np.random.default_rng(5))
        A2 = uniform_random(256, 256, density=0.02, rng=np.random.default_rng(5))
        assert A1 is not A2
        B = rng.normal(size=(256, 8)).astype(np.float32)
        kernel = get_kernel("smat")
        kernel.multiply(A1, B)
        prepared = kernel.bcsr
        kernel.multiply(A2, B)  # same bytes, different object: no re-prepare
        assert kernel.bcsr is prepared

    def test_different_matrix_reprepares(self, rng):
        A1 = uniform_random(256, 256, density=0.02, rng=np.random.default_rng(5))
        A2 = uniform_random(256, 256, density=0.02, rng=np.random.default_rng(6))
        B = rng.normal(size=(256, 8)).astype(np.float32)
        kernel = get_kernel("smat")
        C1 = kernel.multiply(A1, B).C
        prepared = kernel.bcsr
        C2 = kernel.multiply(A2, B).C
        assert kernel.bcsr is not prepared
        np.testing.assert_allclose(C2, A2.spmm(B), atol=1e-2)
        assert not np.allclose(C1, C2)

    def test_first_multiply_prepares(self, rng):
        A = uniform_random(128, 128, density=0.05, rng=rng)
        B = rng.normal(size=(128, 4)).astype(np.float32)
        kernel = get_kernel("cusparse")
        assert not kernel.is_prepared()
        result = kernel.multiply(A, B)
        np.testing.assert_allclose(result.C, A.spmm(B), atol=1e-2)
