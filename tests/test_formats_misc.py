"""Unit tests for the dense wrapper, CSC, generic conversions and IO."""

import io

import numpy as np
import pytest

from repro.formats import (
    BCSRMatrix,
    COOMatrix,
    CSCMatrix,
    CSRMatrix,
    DenseMatrix,
    SRBCRSMatrix,
    convert,
    read_matrix_market,
    write_matrix_market,
)


class TestCSC:
    def test_roundtrip(self, small_dense):
        csc = CSCMatrix.from_dense(small_dense)
        np.testing.assert_allclose(csc.to_dense(), small_dense)

    def test_spmm(self, small_dense, rng):
        csc = CSCMatrix.from_dense(small_dense)
        B = rng.normal(size=(small_dense.shape[1], 4)).astype(np.float32)
        np.testing.assert_allclose(csc.spmm(B), small_dense @ B, rtol=1e-5, atol=1e-5)

    def test_col_nnz(self, small_dense):
        csc = CSCMatrix.from_dense(small_dense)
        np.testing.assert_array_equal(csc.col_nnz(), np.count_nonzero(small_dense, axis=0))

    def test_col_indices(self):
        dense = np.zeros((5, 3), dtype=np.float32)
        dense[1, 2] = 1.0
        dense[4, 2] = 2.0
        csc = CSCMatrix.from_dense(dense)
        assert list(csc.col_indices(2)) == [1, 4]
        assert list(csc.col_indices(0)) == []

    def test_to_csr(self, small_dense):
        csc = CSCMatrix.from_dense(small_dense)
        np.testing.assert_allclose(csc.to_csr().to_dense(), small_dense)

    def test_invalid_colptr(self):
        with pytest.raises(ValueError):
            CSCMatrix([0, 1], [0], [1.0], (3, 3))


class TestDenseWrapper:
    def test_nnz_counts_logical_nonzeros(self):
        data = np.array([[1.0, 0.0], [0.0, 2.0]], dtype=np.float32)
        dm = DenseMatrix(data)
        assert dm.nnz == 2
        assert dm.stored_values == 4

    def test_from_sparse(self, small_csr):
        dm = DenseMatrix.from_sparse(small_csr)
        np.testing.assert_allclose(dm.to_dense(), small_csr.to_dense())
        assert dm.nnz == small_csr.nnz

    def test_spmm(self, small_dense, rng):
        dm = DenseMatrix(small_dense)
        B = rng.normal(size=(small_dense.shape[1], 7)).astype(np.float32)
        np.testing.assert_allclose(dm.spmm(B), small_dense @ B, rtol=1e-5, atol=1e-5)

    def test_rejects_non_2d(self):
        with pytest.raises(ValueError):
            DenseMatrix(np.zeros(5))

    def test_zeros_constructor(self):
        dm = DenseMatrix.zeros((3, 4))
        assert dm.shape == (3, 4)
        assert dm.nnz == 0


class TestConvert:
    @pytest.mark.parametrize("target,cls", [
        ("coo", COOMatrix),
        ("csr", CSRMatrix),
        ("csc", CSCMatrix),
        ("bcsr", BCSRMatrix),
        ("srbcrs", SRBCRSMatrix),
        ("dense", DenseMatrix),
    ])
    def test_convert_preserves_values(self, small_csr, target, cls):
        out = convert(small_csr, target)
        assert isinstance(out, cls)
        np.testing.assert_allclose(out.to_dense(), small_csr.to_dense())

    def test_convert_same_format_is_identity(self, small_csr):
        assert convert(small_csr, "csr") is small_csr

    def test_convert_with_parameters(self, small_csr):
        bcsr = convert(small_csr, "bcsr", block_shape=(4, 4))
        assert bcsr.block_shape == (4, 4)

    def test_unknown_format_raises(self, small_csr):
        with pytest.raises(ValueError, match="unknown format"):
            convert(small_csr, "ellpack")


class TestMatrixMarketIO:
    def test_write_read_roundtrip(self, small_csr, tmp_path):
        path = tmp_path / "m.mtx"
        write_matrix_market(small_csr, path, comment="test matrix")
        back = read_matrix_market(path)
        np.testing.assert_allclose(back.to_dense(), small_csr.to_dense(), rtol=1e-6)

    def test_read_coordinate_general(self):
        text = "\n".join([
            "%%MatrixMarket matrix coordinate real general",
            "% comment line",
            "3 4 2",
            "1 1 1.5",
            "3 4 -2.0",
            "",
        ])
        m = read_matrix_market(io.StringIO(text))
        assert m.shape == (3, 4)
        assert m.nnz == 2
        assert m.to_dense()[0, 0] == pytest.approx(1.5)
        assert m.to_dense()[2, 3] == pytest.approx(-2.0)

    def test_read_pattern(self):
        text = "\n".join([
            "%%MatrixMarket matrix coordinate pattern general",
            "2 2 2",
            "1 2",
            "2 1",
            "",
        ])
        m = read_matrix_market(io.StringIO(text))
        assert m.to_dense()[0, 1] == 1.0
        assert m.to_dense()[1, 0] == 1.0

    def test_read_symmetric_mirrors_entries(self):
        text = "\n".join([
            "%%MatrixMarket matrix coordinate real symmetric",
            "3 3 2",
            "2 1 5.0",
            "3 3 1.0",
            "",
        ])
        m = read_matrix_market(io.StringIO(text))
        dense = m.to_dense()
        assert dense[1, 0] == pytest.approx(5.0)
        assert dense[0, 1] == pytest.approx(5.0)
        assert dense[2, 2] == pytest.approx(1.0)

    def test_read_array_format(self):
        text = "\n".join([
            "%%MatrixMarket matrix array real general",
            "2 2",
            "1.0", "2.0", "3.0", "4.0",
            "",
        ])
        m = read_matrix_market(io.StringIO(text))
        np.testing.assert_allclose(m.to_dense(), [[1.0, 3.0], [2.0, 4.0]])

    def test_reject_non_mm_file(self):
        with pytest.raises(ValueError, match="MatrixMarket"):
            read_matrix_market(io.StringIO("not a matrix\n1 1 1\n"))

    def test_reject_unsupported_field(self):
        text = "%%MatrixMarket matrix coordinate complex general\n1 1 1\n1 1 1.0 0.0\n"
        with pytest.raises(ValueError, match="field"):
            read_matrix_market(io.StringIO(text))

    def test_as_coo_option(self):
        text = "%%MatrixMarket matrix coordinate real general\n2 2 1\n1 1 3.0\n"
        m = read_matrix_market(io.StringIO(text), as_csr=False)
        assert isinstance(m, COOMatrix)
