"""Tests for the CI perf-regression gate (analysis.regression).

The acceptance property: the gate passes on healthy numbers, and a >30%
injected slowdown makes the comparison script exit non-zero (which is
what fails the CI job) while still writing the ``BENCH_pr.json``
artifact.
"""

import json
from pathlib import Path

import pytest

from repro.analysis.regression import (
    build_report,
    compare_metrics,
    extract_metrics,
    main,
)

REPO_BASELINE = Path(__file__).resolve().parent.parent / "benchmarks" / "BENCH_baseline.json"


def bench_doc(speedup: float = 12.0, gflops: float = 300.0) -> dict:
    """A minimal pytest-benchmark JSON document."""
    return {
        "benchmarks": [
            {
                "name": "test_plan_cache_hit_speedup",
                "group": "engine_batching",
                "extra_info": {
                    "speedup": speedup,
                    "cold_ms": 50.0,
                    "warm_ms": 50.0 / speedup,
                    "table": "non-numeric, ignored",
                    "flag": True,  # bools are not metrics
                },
            },
            {
                "name": "test_throughput[batch=16]",
                "group": "engine_batching",
                "extra_info": {"simulated_gflops": gflops},
            },
            {
                "name": "test_throughput[batch=64]",
                "group": "engine_batching",
                "extra_info": {"simulated_gflops": gflops * 2},
            },
            {
                "name": "test_no_group",
                "group": None,
                "extra_info": {"value": 1.0},
            },
        ]
    }


BASELINE = {
    "engine_batching.test_plan_cache_hit_speedup.speedup": {
        "value": 10.0,
        "direction": "higher",
    },
    "engine_batching.test_throughput[batch=16].simulated_gflops": {
        "value": 300.0,
        "direction": "higher",
    },
}


class TestExtract:
    def test_namespaced_numeric_metrics_only(self):
        metrics = extract_metrics(bench_doc())
        assert metrics["engine_batching.test_plan_cache_hit_speedup.speedup"] == 12.0
        # group falls back to the test name
        assert metrics["test_no_group.test_no_group.value"] == 1.0
        assert not any("table" in k or "flag" in k for k in metrics)

    def test_parametrised_variants_stay_distinct(self):
        """Variants must not collapse onto one name (last-write-wins would
        let a regression in the overwritten variant pass undetected)."""
        metrics = extract_metrics(bench_doc())
        assert metrics["engine_batching.test_throughput[batch=16].simulated_gflops"] == 300.0
        assert metrics["engine_batching.test_throughput[batch=64].simulated_gflops"] == 600.0

    def test_empty_document(self):
        assert extract_metrics({}) == {}


class TestCompare:
    def test_healthy_run_passes(self):
        comparisons = compare_metrics(extract_metrics(bench_doc()), BASELINE)
        assert not any(c.regressed for c in comparisons)

    def test_injected_slowdown_fails(self):
        # 40% slowdown on the cache-hit speedup: must trip the 30% gate
        current = extract_metrics(bench_doc(speedup=6.0))
        comparisons = compare_metrics(current, BASELINE, threshold=0.30)
        by_name = {c.metric: c for c in comparisons}
        assert by_name["engine_batching.test_plan_cache_hit_speedup.speedup"].regressed
        assert not by_name[
            "engine_batching.test_throughput[batch=16].simulated_gflops"
        ].regressed

    def test_min_value_floor_guards_bounded_metrics(self):
        """A metric that is >= 1.0 by construction (tuned_vs_default) can
        never lose 30% of a ~1.3 baseline; the absolute floor is the
        effective gate for it."""
        baseline = {
            "tuner.t.ratio": {"value": 1.34, "direction": "higher", "min_value": 1.25}
        }
        # total loss of the tuner's benefit: ratio collapses to 1.0 --
        # inside the 30% band (1.0/1.34 = 0.75 > 0.7) but below the floor
        collapsed = compare_metrics({"tuner.t.ratio": 1.0}, baseline, threshold=0.30)[0]
        assert collapsed.regressed
        healthy = compare_metrics({"tuner.t.ratio": 1.30}, baseline, threshold=0.30)[0]
        assert not healthy.regressed

    def test_min_value_ceiling_for_lower_metrics(self):
        baseline = {"m.latency_ms": {"value": 100.0, "direction": "lower", "min_value": 120.0}}
        assert compare_metrics({"m.latency_ms": 125.0}, baseline)[0].regressed
        assert not compare_metrics({"m.latency_ms": 115.0}, baseline)[0].regressed

    def test_within_threshold_regression_tolerated(self):
        current = extract_metrics(bench_doc(speedup=8.0))  # -20%: inside 30%
        comparisons = compare_metrics(current, BASELINE, threshold=0.30)
        assert not any(c.regressed for c in comparisons)

    def test_missing_metric_fails_closed(self):
        comparisons = compare_metrics({}, BASELINE)
        assert all(c.regressed for c in comparisons)
        assert all(c.current is None for c in comparisons)

    def test_lower_is_better_direction(self):
        baseline = {"m.latency_ms": {"value": 100.0, "direction": "lower"}}
        ok = compare_metrics({"m.latency_ms": 110.0}, baseline)[0]
        bad = compare_metrics({"m.latency_ms": 150.0}, baseline)[0]
        assert not ok.regressed
        assert bad.regressed

    def test_invalid_inputs_rejected(self):
        with pytest.raises(ValueError):
            compare_metrics({}, BASELINE, threshold=1.5)
        with pytest.raises(ValueError):
            compare_metrics({}, {"m": {"value": 1.0, "direction": "sideways"}})


class TestReportAndMain:
    def _run(self, tmp_path, doc, baseline, threshold="0.30"):
        bench_file = tmp_path / "raw.json"
        base_file = tmp_path / "baseline.json"
        out_file = tmp_path / "BENCH_pr.json"
        bench_file.write_text(json.dumps(doc))
        base_file.write_text(json.dumps({"metrics": baseline}))
        code = main(
            [
                str(bench_file),
                "--baseline",
                str(base_file),
                "--output",
                str(out_file),
                "--threshold",
                threshold,
            ]
        )
        return code, json.loads(out_file.read_text())

    def test_healthy_run_exits_zero_and_writes_artifact(self, tmp_path, capsys):
        code, report = self._run(tmp_path, bench_doc(), BASELINE)
        assert code == 0
        assert report["passed"] is True
        assert len(report["comparisons"]) == len(BASELINE)
        assert "engine_batching.test_plan_cache_hit_speedup.speedup" in report["metrics"]
        assert "all baseline metrics within threshold" in capsys.readouterr().out

    def test_injected_slowdown_fails_the_job(self, tmp_path, capsys):
        """Acceptance criterion: a >30% slowdown makes the gate exit 1
        (failing the CI job) while the artifact is still written."""
        code, report = self._run(tmp_path, bench_doc(speedup=6.0), BASELINE)
        assert code == 1
        assert report["passed"] is False
        regressed = [c for c in report["comparisons"] if c["regressed"]]
        assert [c["metric"] for c in regressed] == [
            "engine_batching.test_plan_cache_hit_speedup.speedup"
        ]
        assert "REGRESSED" in capsys.readouterr().out

    def test_build_report_shape(self):
        current = extract_metrics(bench_doc())
        comparisons = compare_metrics(current, BASELINE)
        report = build_report(current, comparisons, 0.30)
        assert set(report) == {"threshold", "passed", "comparisons", "metrics"}


class TestCommittedBaseline:
    """The file the CI job actually uses must stay well-formed."""

    def test_baseline_parses_with_valid_directions(self):
        doc = json.loads(REPO_BASELINE.read_text())
        metrics = doc["metrics"]
        assert metrics, "committed baseline must pin at least one metric"
        for name, spec in metrics.items():
            assert spec["direction"] in ("higher", "lower"), name
            assert float(spec["value"]) > 0, name

    def test_baseline_covers_tuner_and_engine(self):
        metrics = json.loads(REPO_BASELINE.read_text())["metrics"]
        assert any(m.startswith("engine_batching.") for m in metrics)
        assert any(m.startswith("tuner.") for m in metrics)
        assert any(m.startswith("sharding.") for m in metrics)
