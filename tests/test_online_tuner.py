"""Tests for the online self-correcting tuner (repro.tuner.online).

Covers the policy gate (frozen config, env resolution, provable no-op),
passive recording on untuned engines, the full mis-calibration ->
drift -> recalibration -> background re-tune -> atomic plan swap
recovery loop, persistence of re-tuned winners, exploration/promotion,
and the serving-surface integration (telemetry + /metrics).
"""

import pickle
import time

import numpy as np
import pytest

from repro.core.config import SMaTConfig
from repro.core.policy import (
    ONLINE_TUNE_ENV,
    ExecutionPolicy,
    OnlineTuningConfig,
    default_online_tune,
)
from repro.engine import SpMMEngine
from repro.matrices import band_matrix
from repro.tuner import OnlineTuner, Tuner

DIM = 512


@pytest.fixture
def dense_band():
    """A near-dense band: cuBLAS wins it, SMaT is ~4x slower -- the
    recovery scenario's ground truth."""
    return band_matrix(DIM, int(DIM * 0.9), rng=np.random.default_rng(7))


@pytest.fixture
def operands():
    return [
        np.random.default_rng(i).normal(size=(DIM, 8)).astype(np.float32)
        for i in range(4)
    ]


def _wait(predicate, timeout=30.0, interval=0.02):
    """Poll ``predicate`` until true or ``timeout`` elapses."""
    deadline = time.monotonic() + timeout
    while time.monotonic() < deadline:
        if predicate():
            return True
        time.sleep(interval)
    return predicate()


class TestOnlineTuningConfig:
    def test_defaults_and_frozen(self):
        cfg = OnlineTuningConfig()
        assert cfg.drift_threshold > 1
        assert cfg.window >= cfg.min_samples
        assert cfg.explore == 0.0
        with pytest.raises((AttributeError, TypeError)):
            cfg.explore = 0.5

    def test_hashable_and_picklable(self):
        cfg = OnlineTuningConfig(explore=0.125)
        assert hash(cfg) == hash(OnlineTuningConfig(explore=0.125))
        assert pickle.loads(pickle.dumps(cfg)) == cfg

    @pytest.mark.parametrize(
        "kwargs",
        [
            {"drift_threshold": 1.0},
            {"drift_threshold": 0.5},
            {"min_samples": 0},
            {"window": 4, "min_samples": 8},
            {"explore": 1.0},
            {"explore": -0.1},
            {"near_margin": 0.9},
            {"max_keys": 0},
            {"max_pending": 0},
        ],
    )
    def test_rejects_invalid_fields(self, kwargs):
        with pytest.raises(ValueError):
            OnlineTuningConfig(**kwargs)

    def test_policy_field_validated_and_hashable(self):
        policy = ExecutionPolicy(online_tune=OnlineTuningConfig())
        assert policy.resolved_online_tune() == OnlineTuningConfig()
        hash(policy)
        with pytest.raises(TypeError):
            ExecutionPolicy(online_tune="yes")  # type: ignore[arg-type]


class TestEnvResolution:
    def test_default_is_off(self, monkeypatch):
        monkeypatch.delenv(ONLINE_TUNE_ENV, raising=False)
        assert default_online_tune() is None
        assert ExecutionPolicy().resolved_online_tune() is None

    @pytest.mark.parametrize("value", ["1", "true", "on", "yes"])
    def test_truthy_env_enables_defaults(self, monkeypatch, value):
        monkeypatch.setenv(ONLINE_TUNE_ENV, value)
        assert default_online_tune() == OnlineTuningConfig()
        assert ExecutionPolicy().resolved_online_tune() == OnlineTuningConfig()

    @pytest.mark.parametrize("value", ["0", "false", "off", "no", ""])
    def test_falsy_env_stays_off(self, monkeypatch, value):
        monkeypatch.setenv(ONLINE_TUNE_ENV, value)
        assert default_online_tune() is None

    def test_invalid_env_raises(self, monkeypatch):
        monkeypatch.setenv(ONLINE_TUNE_ENV, "banana")
        with pytest.raises(ValueError, match="REPRO_ONLINE_TUNE"):
            default_online_tune()

    def test_explicit_field_beats_env(self, monkeypatch):
        monkeypatch.setenv(ONLINE_TUNE_ENV, "0")
        cfg = OnlineTuningConfig(min_samples=2, window=2)
        assert ExecutionPolicy(online_tune=cfg).resolved_online_tune() == cfg


class TestProvableNoOp:
    def test_disabled_engine_has_no_online_state(self, dense_band, operands, monkeypatch):
        monkeypatch.delenv(ONLINE_TUNE_ENV, raising=False)
        with SpMMEngine(policy=ExecutionPolicy(max_workers=1)) as engine:
            engine.multiply_many(dense_band, operands)
            assert engine.online_tuner is None
            assert engine.telemetry().online is None
            assert engine.metrics.get("repro_online_observations_total") is None

    def test_enabled_engine_off_path_costs_nothing_extra(self, dense_band, operands):
        """Identical numerics with and without the online tuner."""
        pol_off = ExecutionPolicy(max_workers=1)
        pol_on = ExecutionPolicy(
            max_workers=1, online_tune=OnlineTuningConfig(min_samples=2, window=8)
        )
        with SpMMEngine(policy=pol_off) as e_off, SpMMEngine(policy=pol_on) as e_on:
            C_off = e_off.multiply(dense_band, operands[0])
            C_on = e_on.multiply(dense_band, operands[0])
        np.testing.assert_array_equal(C_off, C_on)


class TestPassiveMode:
    def test_untuned_engine_records_but_never_retunes(self, dense_band, operands):
        policy = ExecutionPolicy(
            max_workers=1,
            online_tune=OnlineTuningConfig(
                min_samples=2, window=8, drift_threshold=1.01
            ),
        )
        with SpMMEngine(policy=policy) as engine:
            for _ in range(3):
                engine.multiply_many(dense_band, operands)
            assert _wait(
                lambda: engine.telemetry().online.observations >= 12
            ), engine.telemetry().online
            online = engine.telemetry().online
            # drift is tracked (threshold 1.01 trips on any model error)...
            assert "smat" in online.drift or online.recalibrations >= 0
            # ...but nothing is ever re-tuned or swapped without a tuner
            assert online.retunes == 0
            assert online.plan_swaps == 0
            assert online.worker_alive
        # close() stops the worker
        assert not engine.telemetry().online.worker_alive

    def test_observations_flow_into_metrics_registry(self, dense_band, operands):
        policy = ExecutionPolicy(
            max_workers=1, online_tune=OnlineTuningConfig(min_samples=2, window=8)
        )
        with SpMMEngine(policy=policy) as engine:
            engine.multiply_many(dense_band, operands)
            counter = engine.metrics.get("repro_online_observations_total")
            assert counter is not None
            assert _wait(lambda: counter.total() >= len(operands))
            rendered = engine.metrics.render_prometheus()
        assert "repro_online_observations_total" in rendered
        assert "repro_online_observed_ms_bucket" in rendered


class TestRecoveryLoop:
    def test_miscalibration_recovers_to_offline_winner(self, dense_band, operands):
        """The headline behaviour: poison one backend's price, serve
        traffic, and watch the loop recalibrate, re-tune in the
        background and atomically swap to the true winner."""
        offline = Tuner(cache=False).tune(dense_band, SMaTConfig(kernel="auto"))
        assert offline.best.candidate.kernel == "cublas"  # scenario sanity

        tuner = Tuner(cache=False)
        policy = ExecutionPolicy(
            max_workers=1,
            tune=True,
            online_tune=OnlineTuningConfig(min_samples=8, drift_threshold=2.5),
        )
        engine = SpMMEngine(
            config=SMaTConfig(kernel="auto"), policy=policy, tuner=tuner
        )
        try:
            # mis-calibrate: the model now believes SMaT is 50x faster
            # than it is, so the search prunes cuBLAS and serves SMaT
            engine.online_tuner.scales["smat"] = 1 / 50.0
            first = engine.execute_one(dense_band, operands[0])
            assert first.report.backend == "smat"

            recovered_at = None
            for i in range(300):
                result = engine.execute_one(dense_band, operands[i % 4])
                if result.report.backend == "cublas":
                    recovered_at = i
                    break
                time.sleep(0.01)
            online = engine.telemetry().online
            assert recovered_at is not None, online
            assert online.recalibrations >= 1
            assert online.retunes >= 1
            assert online.plan_swaps >= 1
            assert online.errors == 0, online.last_error
            # the recalibrated smat price is back near honest (1/50 -> ~1)
            assert online.model_scales["smat"] > 0.2
        finally:
            engine.close()

    def test_retuned_winner_persists_to_tuning_cache(
        self, dense_band, operands, tmp_path
    ):
        """store=True on the background re-tune: a fresh tuner pointed at
        the same cache file resolves straight to the recovered winner."""
        cache_path = tmp_path / "tuning.json"
        tuner = Tuner(cache=cache_path)
        policy = ExecutionPolicy(
            max_workers=1,
            tune=True,
            online_tune=OnlineTuningConfig(min_samples=8, drift_threshold=2.5),
        )
        base = SMaTConfig(kernel="auto")
        engine = SpMMEngine(config=base, policy=policy, tuner=tuner)
        try:
            engine.online_tuner.scales["smat"] = 1 / 50.0
            for i in range(300):
                if engine.execute_one(dense_band, operands[i % 4]).report.backend == "cublas":
                    break
                time.sleep(0.01)
            assert engine.telemetry().online.plan_swaps >= 1
        finally:
            engine.close()

        fresh = Tuner(cache=cache_path)
        resolved = fresh.resolve(dense_band, base)
        assert resolved.resolved_kernel() == "cublas"
        assert fresh.cache.stats.hits >= 1  # came from the file, not a search


class TestExploration:
    def test_exploration_serves_near_winners_and_reports_share(
        self, dense_band, operands
    ):
        tuner = Tuner(cache=False)
        policy = ExecutionPolicy(
            max_workers=1,
            tune=True,
            online_tune=OnlineTuningConfig(
                min_samples=4, explore=0.25, near_margin=50.0
            ),
        )
        engine = SpMMEngine(
            config=SMaTConfig(kernel="auto"), policy=policy, tuner=tuner
        )
        try:
            # first call runs the search; its measured near-winners seed
            # the exploration alternates
            engine.execute_one(dense_band, operands[0])
            assert _wait(lambda: engine.telemetry().online.observations >= 1)
            explored = 0
            for i in range(40):
                engine.execute_one(dense_band, operands[i % 4])
            assert _wait(lambda: engine.telemetry().online.observations >= 41)
            online = engine.telemetry().online
            explored = online.explored
            assert explored >= 4, online  # ~25% of 40, deterministic stride
            assert 0.0 < online.exploration_share < 0.5
        finally:
            engine.close()

    def test_explore_zero_never_explores(self, dense_band, operands):
        tuner = Tuner(cache=False)
        policy = ExecutionPolicy(
            max_workers=1, tune=True, online_tune=OnlineTuningConfig(min_samples=4)
        )
        engine = SpMMEngine(
            config=SMaTConfig(kernel="auto"), policy=policy, tuner=tuner
        )
        try:
            for i in range(20):
                engine.execute_one(dense_band, operands[i % 4])
            assert _wait(lambda: engine.telemetry().online.observations >= 20)
            assert engine.telemetry().online.explored == 0
        finally:
            engine.close()


class TestServingSurface:
    def test_metrics_document_gains_online_section(self, dense_band, operands):
        from repro.serve.metrics import ServerMetrics

        policy = ExecutionPolicy(
            max_workers=1, online_tune=OnlineTuningConfig(min_samples=2, window=8)
        )
        with SpMMEngine(policy=policy) as engine:
            engine.multiply_many(dense_band, operands)
            assert _wait(lambda: engine.telemetry().online.observations >= 4)
            doc = ServerMetrics().snapshot(engine=engine)
            online = doc["engine"]["online"]
            assert online["observations"] >= 4
            assert isinstance(online["drift"], dict)
            assert set(online) >= {
                "recalibrations",
                "retunes",
                "plan_swaps",
                "exploration_share",
                "worker_alive",
            }
            text = ServerMetrics().prometheus(engine=engine)
        assert "repro_online_observations_total" in text

    def test_disabled_engine_document_has_no_online_section(
        self, dense_band, operands, monkeypatch
    ):
        from repro.serve.metrics import ServerMetrics

        monkeypatch.delenv(ONLINE_TUNE_ENV, raising=False)
        with SpMMEngine(policy=ExecutionPolicy(max_workers=1)) as engine:
            engine.multiply_many(dense_band, operands)
            doc = ServerMetrics().snapshot(engine=engine)
            assert "online" not in doc["engine"]


class TestBoundedState:
    def test_max_keys_bounds_tracked_state(self, operands):
        policy = ExecutionPolicy(
            max_workers=1,
            online_tune=OnlineTuningConfig(min_samples=2, window=8, max_keys=2),
        )
        with SpMMEngine(policy=policy) as engine:
            for i in range(5):
                A = band_matrix(DIM, 4 + 2 * i, rng=np.random.default_rng(100 + i))
                engine.execute_one(A, operands[0])
            assert _wait(lambda: engine.telemetry().online.observations >= 5)
            online = engine.telemetry().online
            assert online.keys <= 2
            assert online.observations >= 5  # metrics still see every sample

    def test_standalone_online_tuner_close_is_idempotent(self):
        online = OnlineTuner(OnlineTuningConfig())
        online.close()
        online.close()
        assert not online.telemetry().worker_alive
