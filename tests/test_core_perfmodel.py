"""Tests for the empirical performance model (paper Section III)."""

import numpy as np
import pytest

from repro.core import LinearPerformanceModel, block_count_bounds
from repro.kernels import SMaTKernel
from repro.matrices import band_matrix


class TestBlockCountBounds:
    def test_eq2_formula(self):
        lower, upper = block_count_bounds(nnz=1000, n_rows=128, n_cols=128, block_shape=(16, 8))
        assert lower == -(-1000 // 128)
        assert upper == min((128 // 16) * (128 // 8), 1000)

    def test_empty_matrix(self):
        assert block_count_bounds(0, 64, 64, (16, 8)) == (0, 0)

    def test_dense_matrix_upper_bound_is_grid(self):
        lower, upper = block_count_bounds(64 * 64, 64, 64, (16, 8))
        assert upper == (64 // 16) * (64 // 8)
        assert lower == upper

    def test_invalid_block_shape(self):
        with pytest.raises(ValueError):
            block_count_bounds(10, 8, 8, (0, 4))


class TestLinearFit:
    def test_recovers_exact_linear_relation(self):
        model = LinearPerformanceModel()
        n_e = np.array([100.0, 500.0, 1000.0, 5000.0, 10000.0])
        t = 2e-9 * n_e + 5e-6
        fit = model.fit(n_e, t)
        assert fit.t_e == pytest.approx(2e-9, rel=1e-6)
        assert fit.t_init == pytest.approx(5e-6, rel=1e-6)
        assert fit.r_squared == pytest.approx(1.0)

    def test_prediction(self):
        model = LinearPerformanceModel()
        model.fit([1.0, 2.0, 3.0], [10.0, 20.0, 30.0])
        np.testing.assert_allclose(model.predict([4.0, 5.0]), [40.0, 50.0], rtol=0.05)

    def test_negative_intercept_clamped(self):
        model = LinearPerformanceModel()
        fit = model.fit([10.0, 20.0, 30.0], [0.9, 2.1, 2.9])
        assert fit.t_init >= 0.0

    def test_requires_two_samples(self):
        with pytest.raises(ValueError):
            LinearPerformanceModel().fit([1.0], [1.0])

    def test_mismatched_lengths(self):
        with pytest.raises(ValueError):
            LinearPerformanceModel().fit([1.0, 2.0], [1.0])

    def test_unfitted_model_raises(self):
        with pytest.raises(RuntimeError):
            LinearPerformanceModel().predict([1.0])

    def test_relative_error(self):
        model = LinearPerformanceModel()
        fit = model.fit([1.0, 2.0, 4.0], [2.0, 4.0, 8.0])
        errors = fit.relative_error([1.0, 2.0, 4.0], [2.0, 4.0, 8.0])
        assert np.all(errors < 0.01)


class TestModelAgainstSimulatedKernel:
    """Figure 2: the linear model must describe the simulated SMaT kernel on
    band matrices of varying bandwidth (that is exactly how the paper fits
    and validates Eq. 1)."""

    @pytest.fixture(scope="class")
    def band_sweep_results(self):
        results = []
        rng = np.random.default_rng(0)
        n = 4096
        B = rng.normal(size=(n, 8)).astype(np.float32)
        for bandwidth in (16, 32, 64, 128, 256):
            A = band_matrix(n, bandwidth, rng=rng)
            results.append(SMaTKernel().multiply(A, B))
        return results

    def test_fit_quality(self, band_sweep_results):
        model = LinearPerformanceModel()
        fit = model.fit_from_results(band_sweep_results)
        assert fit.r_squared > 0.95

    def test_time_per_block_is_physically_plausible(self, band_sweep_results):
        fit = LinearPerformanceModel().fit_from_results(band_sweep_results)
        # T_e must be below a microsecond per block and above a picosecond
        assert 1e-12 < fit.t_e < 1e-6

    def test_model_predicts_unseen_bandwidth(self, band_sweep_results):
        model = LinearPerformanceModel()
        model.fit_from_results(band_sweep_results)
        rng = np.random.default_rng(1)
        n = 4096
        A = band_matrix(n, 192, rng=rng)
        B = rng.normal(size=(n, 8)).astype(np.float32)
        result = SMaTKernel().multiply(A, B)
        predicted = model.predict([result.counters.extra["n_blocks"]])[0]
        assert predicted == pytest.approx(result.timing.time_s, rel=0.35)
